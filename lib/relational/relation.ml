type backend = Row | Columnar

(* Row storage: the original hash-of-tuples bag, plus cached hash indexes.
   Index buckets are counted [Tuple.Hashtbl]s — tuple -> current
   multiplicity — so removal under a skewed key is O(1) instead of the old
   list-bucket O(bucket) rebuild, and joins can read multiplicities straight
   off the bucket. *)
type rows = {
  rows : int Tuple.Hashtbl.t;
  indexes : (int array, (Tuple.t, int Tuple.Hashtbl.t) Hashtbl.t) Hashtbl.t;
}

type store = Rows of rows | Cols of Column_store.t

type t = {
  name : string;
  schema : Schema.t;
  store : store;
  (* Undo-log hook: called with (tuple, previous count) immediately before
     any mutation of that tuple's multiplicity.  Detached (None) outside a
     transaction; must be detached before marshalling the relation. *)
  mutable journal : (Tuple.t -> int -> unit) option;
}

let create ?(backend = Row) ?(name = "<anon>") schema =
  let store =
    match backend with
    | Row ->
      Rows { rows = Tuple.Hashtbl.create 64; indexes = Hashtbl.create 4 }
    | Columnar -> Cols (Column_store.create schema)
  in
  { name; schema; store; journal = None }

let backend t = match t.store with Rows _ -> Row | Cols _ -> Columnar

let columnar t = match t.store with Rows _ -> None | Cols cs -> Some cs

let set_journal t hook = t.journal <- hook

let note_journal t tup prev =
  match t.journal with None -> () | Some f -> f tup prev

(* [index_set]/[index_drop] keep every cached index bucket's multiplicity
   current: [index_set] upserts (tuple -> count) in each index, [index_drop]
   removes the tuple (dropping emptied buckets so stale keys don't pin
   memory). *)
let index_set indexes tuple count =
  Hashtbl.iter
    (fun key_cols index ->
      let key = Tuple.project tuple key_cols in
      let bucket =
        match Hashtbl.find_opt index key with
        | Some b -> b
        | None ->
          let b = Tuple.Hashtbl.create 4 in
          Hashtbl.replace index key b;
          b
      in
      Tuple.Hashtbl.replace bucket tuple count)
    indexes

let index_drop indexes tuple =
  Hashtbl.iter
    (fun key_cols index ->
      let key = Tuple.project tuple key_cols in
      match Hashtbl.find_opt index key with
      | None -> ()
      | Some bucket ->
        Tuple.Hashtbl.remove bucket tuple;
        if Tuple.Hashtbl.length bucket = 0 then Hashtbl.remove index key)
    indexes

let name t = t.name

let schema t = t.schema

let cardinality t =
  match t.store with
  | Rows r -> Tuple.Hashtbl.length r.rows
  | Cols cs -> Column_store.cardinality cs

let total_count t =
  match t.store with
  | Rows r -> Tuple.Hashtbl.fold (fun _ c acc -> acc + c) r.rows 0
  | Cols cs -> Column_store.total_count cs

let mem t tup =
  match t.store with
  | Rows r -> Tuple.Hashtbl.mem r.rows tup
  | Cols cs -> Column_store.mem cs tup

let count t tup =
  match t.store with
  | Rows r -> ( try Tuple.Hashtbl.find r.rows tup with Not_found -> 0)
  | Cols cs -> Column_store.count cs tup

let notify_of t tup =
  match t.journal with
  | None -> None
  | Some f -> Some (fun prev -> f tup prev)

let insert_prev ?(count = 1) t tup =
  if count <= 0 then invalid_arg "Relation.insert: count must be positive";
  if not (Schema.conforms t.schema tup) then
    invalid_arg
      (Printf.sprintf "Relation.insert: tuple %s does not conform to %s%s"
         (Tuple.to_string tup) t.name
         (Format.asprintf "%a" Schema.pp t.schema));
  match t.store with
  | Rows r ->
    let current = try Tuple.Hashtbl.find r.rows tup with Not_found -> 0 in
    note_journal t tup current;
    Tuple.Hashtbl.replace r.rows tup (current + count);
    index_set r.indexes tup (current + count);
    current
  | Cols cs -> Column_store.insert_prev ~count ?notify:(notify_of t tup) cs tup

let insert ?count t tup = ignore (insert_prev ?count t tup)

let remove ?(count = 1) t tup =
  if count <= 0 then invalid_arg "Relation.remove: count must be positive";
  match t.store with
  | Rows r -> (
    match Tuple.Hashtbl.find_opt r.rows tup with
    | None -> 0
    | Some current ->
      note_journal t tup current;
      let removed = min count current in
      if current - removed = 0 then begin
        Tuple.Hashtbl.remove r.rows tup;
        index_drop r.indexes tup
      end
      else begin
        Tuple.Hashtbl.replace r.rows tup (current - removed);
        index_set r.indexes tup (current - removed)
      end;
      removed)
  | Cols cs -> Column_store.remove ~count ?notify:(notify_of t tup) cs tup

let delete_all t tup =
  match t.store with
  | Rows r -> (
    match Tuple.Hashtbl.find_opt r.rows tup with
    | None -> ()
    | Some current ->
      note_journal t tup current;
      Tuple.Hashtbl.remove r.rows tup;
      index_drop r.indexes tup)
  | Cols cs -> Column_store.delete_all ?notify:(notify_of t tup) cs tup

let clear t =
  match t.store with
  | Rows r ->
    (match t.journal with
    | None -> ()
    | Some f -> Tuple.Hashtbl.iter f r.rows);
    Tuple.Hashtbl.reset r.rows;
    Hashtbl.reset r.indexes
  | Cols cs -> Column_store.clear ?notify:t.journal cs

let iter f t =
  match t.store with
  | Rows r -> Tuple.Hashtbl.iter f r.rows
  | Cols cs -> Column_store.iter f cs

let fold f t init =
  match t.store with
  | Rows r -> Tuple.Hashtbl.fold f r.rows init
  | Cols cs -> Column_store.fold f cs init

let to_list t = fold (fun tup _ acc -> tup :: acc) t []

let to_counted_list t = fold (fun tup c acc -> (tup, c) :: acc) t []

let copy t =
  let store =
    match t.store with
    | Rows r ->
      Rows { rows = Tuple.Hashtbl.copy r.rows; indexes = Hashtbl.create 4 }
    | Cols cs -> Cols (Column_store.copy cs)
  in
  { t with store; journal = None }

(* Force a tuple's multiplicity to [target] (0 = absent) while keeping the
   cached indexes consistent.  Bypasses the journal — this is the undo-log
   replay primitive, and replaying must not re-log. *)
let restore_count t tup target =
  match t.store with
  | Rows r ->
    let current = try Tuple.Hashtbl.find r.rows tup with Not_found -> 0 in
    if current <> target then
      if target <= 0 then begin
        Tuple.Hashtbl.remove r.rows tup;
        index_drop r.indexes tup
      end
      else begin
        Tuple.Hashtbl.replace r.rows tup target;
        index_set r.indexes tup target
      end
  | Cols cs -> Column_store.restore_count cs tup target

let of_list ?backend ?name schema tuples =
  let t = create ?backend ?name schema in
  List.iter (fun tup -> insert t tup) tuples;
  t

let convert backend t =
  if backend = (match t.store with Rows _ -> Row | Cols _ -> Columnar) then t
  else begin
    let fresh = create ~backend ~name:t.name t.schema in
    iter (fun tup c -> insert ~count:c fresh tup) t;
    fresh
  end

let equal_contents a b =
  cardinality a = cardinality b
  && fold (fun tup c acc -> acc && count b tup = c) a true

let equal_sets a b =
  cardinality a = cardinality b && fold (fun tup _ acc -> acc && mem b tup) a true

(* Re-audit schema conformance and count positivity — [insert] enforces
   both on entry, but a relation restored from a durable snapshot bypassed
   insert entirely.  Columnar stores additionally get their structural
   audit (dictionary bijectivity, run sortedness, tail/base accounting). *)
let validate t =
  let contents =
    fold
      (fun tup c acc ->
        Result.bind acc (fun () ->
            if c <= 0 then
              Error (Printf.sprintf "%s: tuple %s has non-positive count %d" t.name (Tuple.to_string tup) c)
            else if not (Schema.conforms t.schema tup) then
              Error
                (Printf.sprintf "%s: tuple %s does not conform to schema%s" t.name
                   (Tuple.to_string tup)
                   (Format.asprintf "%a" Schema.pp t.schema))
            else Ok ()))
      t (Ok ())
  in
  Result.bind contents (fun () ->
      match t.store with
      | Rows _ -> Ok ()
      | Cols cs -> (
        match Column_store.audit cs with
        | Ok () -> Ok ()
        | Error m -> Error (Printf.sprintf "%s: columnar audit: %s" t.name m)))

let filter pred t =
  let out = create ~backend:(backend t) ~name:t.name t.schema in
  iter (fun tup c -> if pred tup then insert ~count:c out tup) t;
  out

let build_index t key_cols =
  let index = Hashtbl.create (max 16 (cardinality t)) in
  iter
    (fun tup c ->
      let key = Tuple.project tup key_cols in
      let bucket =
        match Hashtbl.find_opt index key with
        | Some b -> b
        | None ->
          let b = Tuple.Hashtbl.create 4 in
          Hashtbl.replace index key b;
          b
      in
      Tuple.Hashtbl.replace bucket tup c)
    t;
  index

let get_index t key_cols =
  match t.store with
  | Rows r -> (
    match Hashtbl.find_opt r.indexes key_cols with
    | Some index -> index
    | None ->
      let index = build_index t key_cols in
      Hashtbl.replace r.indexes (Array.copy key_cols) index;
      index)
  | Cols _ ->
    (* Columnar probes go through [Column_store.iter_key]; a materialized
       hash index is only built for legacy consumers (the matcher) and is
       not cached — it would go stale silently. *)
    build_index t key_cols

let pp fmt t =
  Format.fprintf fmt "@[<v>%s%a {@," t.name Schema.pp t.schema;
  iter (fun tup c -> Format.fprintf fmt "  %a x%d@," Tuple.pp tup c) t;
  Format.fprintf fmt "}@]"
