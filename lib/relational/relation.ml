type t = {
  name : string;
  schema : Schema.t;
  rows : int Tuple.Hashtbl.t;
  (* Cached hash indexes keyed by the indexed column positions; maintained
     incrementally on membership changes. *)
  indexes : (int array, (Tuple.t, Tuple.t list) Hashtbl.t) Hashtbl.t;
  (* Undo-log hook: called with (tuple, previous count) immediately before
     any mutation of that tuple's multiplicity.  Detached (None) outside a
     transaction; must be detached before marshalling the relation. *)
  mutable journal : (Tuple.t -> int -> unit) option;
}

let create ?(name = "<anon>") schema =
  {
    name;
    schema;
    rows = Tuple.Hashtbl.create 64;
    indexes = Hashtbl.create 4;
    journal = None;
  }

let set_journal t hook = t.journal <- hook

let note_journal t tup prev =
  match t.journal with None -> () | Some f -> f tup prev

let index_add indexes tuple =
  Hashtbl.iter
    (fun key_cols index ->
      let key = Tuple.project tuple key_cols in
      let existing = try Hashtbl.find index key with Not_found -> [] in
      Hashtbl.replace index key (tuple :: existing))
    indexes

let index_remove indexes tuple =
  Hashtbl.iter
    (fun key_cols index ->
      let key = Tuple.project tuple key_cols in
      match Hashtbl.find_opt index key with
      | None -> ()
      | Some tuples -> (
        match List.filter (fun t -> not (Tuple.equal t tuple)) tuples with
        | [] -> Hashtbl.remove index key
        | remaining -> Hashtbl.replace index key remaining))
    indexes

let name t = t.name

let schema t = t.schema

let cardinality t = Tuple.Hashtbl.length t.rows

let total_count t = Tuple.Hashtbl.fold (fun _ c acc -> acc + c) t.rows 0

let mem t tup = Tuple.Hashtbl.mem t.rows tup

let count t tup = try Tuple.Hashtbl.find t.rows tup with Not_found -> 0

let insert ?(count = 1) t tup =
  if count <= 0 then invalid_arg "Relation.insert: count must be positive";
  if not (Schema.conforms t.schema tup) then
    invalid_arg
      (Printf.sprintf "Relation.insert: tuple %s does not conform to %s%s"
         (Tuple.to_string tup) t.name
         (Format.asprintf "%a" Schema.pp t.schema));
  let current = try Tuple.Hashtbl.find t.rows tup with Not_found -> 0 in
  note_journal t tup current;
  Tuple.Hashtbl.replace t.rows tup (current + count);
  if current = 0 then index_add t.indexes tup

let remove ?(count = 1) t tup =
  if count <= 0 then invalid_arg "Relation.remove: count must be positive";
  match Tuple.Hashtbl.find_opt t.rows tup with
  | None -> 0
  | Some current ->
    note_journal t tup current;
    let removed = min count current in
    if current - removed = 0 then begin
      Tuple.Hashtbl.remove t.rows tup;
      index_remove t.indexes tup
    end
    else Tuple.Hashtbl.replace t.rows tup (current - removed);
    removed

let delete_all t tup =
  match Tuple.Hashtbl.find_opt t.rows tup with
  | None -> ()
  | Some current ->
    note_journal t tup current;
    Tuple.Hashtbl.remove t.rows tup;
    index_remove t.indexes tup

let clear t =
  (match t.journal with
  | None -> ()
  | Some f -> Tuple.Hashtbl.iter f t.rows);
  Tuple.Hashtbl.reset t.rows;
  Hashtbl.reset t.indexes

let iter f t = Tuple.Hashtbl.iter f t.rows

let fold f t init = Tuple.Hashtbl.fold f t.rows init

let to_list t = fold (fun tup _ acc -> tup :: acc) t []

let to_counted_list t = fold (fun tup c acc -> (tup, c) :: acc) t []

let copy t =
  { t with rows = Tuple.Hashtbl.copy t.rows; indexes = Hashtbl.create 4; journal = None }

(* Force a tuple's multiplicity to [target] (0 = absent) while keeping the
   cached indexes consistent.  Bypasses the journal — this is the undo-log
   replay primitive, and replaying must not re-log. *)
let restore_count t tup target =
  let current = try Tuple.Hashtbl.find t.rows tup with Not_found -> 0 in
  if current <> target then
    if target <= 0 then begin
      Tuple.Hashtbl.remove t.rows tup;
      index_remove t.indexes tup
    end
    else begin
      Tuple.Hashtbl.replace t.rows tup target;
      if current = 0 then index_add t.indexes tup
    end

let of_list ?name schema tuples =
  let t = create ?name schema in
  List.iter (fun tup -> insert t tup) tuples;
  t

let equal_contents a b =
  cardinality a = cardinality b
  && fold (fun tup c acc -> acc && count b tup = c) a true

let equal_sets a b =
  cardinality a = cardinality b && fold (fun tup _ acc -> acc && mem b tup) a true

(* Re-audit schema conformance and count positivity — [insert] enforces
   both on entry, but a relation restored from a durable snapshot bypassed
   insert entirely. *)
let validate t =
  fold
    (fun tup c acc ->
      Result.bind acc (fun () ->
          if c <= 0 then
            Error (Printf.sprintf "%s: tuple %s has non-positive count %d" t.name (Tuple.to_string tup) c)
          else if not (Schema.conforms t.schema tup) then
            Error
              (Printf.sprintf "%s: tuple %s does not conform to schema%s" t.name
                 (Tuple.to_string tup)
                 (Format.asprintf "%a" Schema.pp t.schema))
          else Ok ()))
    t (Ok ())

let filter pred t =
  let out = create ~name:t.name t.schema in
  iter (fun tup c -> if pred tup then insert ~count:c out tup) t;
  out

let build_index t key_cols =
  let index = Hashtbl.create (max 16 (cardinality t)) in
  iter
    (fun tup _ ->
      let key = Tuple.project tup key_cols in
      let existing = try Hashtbl.find index key with Not_found -> [] in
      Hashtbl.replace index key (tup :: existing))
    t;
  index

let get_index t key_cols =
  match Hashtbl.find_opt t.indexes key_cols with
  | Some index -> index
  | None ->
    let index = build_index t key_cols in
    Hashtbl.replace t.indexes (Array.copy key_cols) index;
    index

let pp fmt t =
  Format.fprintf fmt "@[<v>%s%a {@," t.name Schema.pp t.schema;
  iter (fun tup c -> Format.fprintf fmt "  %a x%d@," Tuple.pp tup c) t;
  Format.fprintf fmt "}@]"
