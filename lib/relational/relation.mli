(** Named, schema-checked in-memory relations.

    Storage is a bag with per-tuple multiplicities ("derivation counts"),
    which is exactly the representation the DRed incremental view-maintenance
    algorithm needs (each delta relation carries a [count] column tracking
    the number of derivations of a tuple).  A relation with all counts equal
    to one behaves as a set.

    Two interchangeable backends sit behind one interface: {!Row}, the
    original hash-of-tuples store (the equivalence reference), and
    {!Columnar}, the dictionary-encoded column store ({!Column_store}) built
    for 10M+ fact scales.  All operations below behave identically on both;
    {!columnar} exposes the int-id plane to consumers (the join planner)
    that can exploit it. *)

type backend = Row | Columnar

type t

val create : ?backend:backend -> ?name:string -> Schema.t -> t
(** Default backend is {!Row}. *)

val backend : t -> backend

val columnar : t -> Column_store.t option
(** The underlying column store, when the backend is {!Columnar}. *)

val convert : backend -> t -> t
(** [convert b t] is [t] itself when already on backend [b], otherwise a
    fresh relation with the same name, schema and counted contents.  The
    journal hook is not carried over — convert outside transactions. *)

val name : t -> string

val schema : t -> Schema.t

val cardinality : t -> int
(** Number of distinct tuples. *)

val total_count : t -> int
(** Sum of multiplicities. *)

val mem : t -> Tuple.t -> bool

val count : t -> Tuple.t -> int
(** Multiplicity; 0 when absent. *)

val insert : ?count:int -> t -> Tuple.t -> unit
(** Add [count] (default 1) derivations of a tuple.  Raises
    [Invalid_argument] when the tuple does not conform to the schema or
    [count <= 0]. *)

val insert_prev : ?count:int -> t -> Tuple.t -> int
(** Like {!insert} but returns the tuple's previous multiplicity — one
    store lookup where a [mem]-then-[insert] pair would pay two. *)

val remove : ?count:int -> t -> Tuple.t -> int
(** Subtract up to [count] derivations; returns how many were actually
    removed. The tuple disappears when its multiplicity reaches zero. *)

val delete_all : t -> Tuple.t -> unit
(** Drop a tuple regardless of multiplicity. *)

val clear : t -> unit

val iter : (Tuple.t -> int -> unit) -> t -> unit

val fold : (Tuple.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> Tuple.t list
(** Distinct tuples, unspecified order. *)

val to_counted_list : t -> (Tuple.t * int) list

val copy : t -> t
(** Deep copy of the tuple store (same backend).  Cached indexes
    ({!get_index}) are {e not} carried over: the copy starts with an empty
    index table, and the first [get_index] on it rebuilds from the copied
    rows.  Callers holding an index obtained from the original must not
    assume it reflects (or is shared with) the copy — the two relations
    maintain indexes independently from the moment of the copy. *)

val set_journal : t -> (Tuple.t -> int -> unit) option -> unit
(** Attach (or detach, with [None]) an undo-log hook.  While attached, every
    mutation of a tuple's multiplicity — {!insert}, {!remove},
    {!delete_all}, and each row dropped by {!clear} — first calls the hook
    with the tuple and its {e previous} count, so a transaction can record
    the inverse operation before the store changes.  The hook must not
    mutate the relation.  {!copy} does not carry the hook over, and the
    hook must be detached before the relation is marshalled (closures do
    not marshal). *)

val restore_count : t -> Tuple.t -> int -> unit
(** [restore_count t tup n] forces [tup]'s multiplicity to exactly [n]
    ([n <= 0] removes it), maintaining cached indexes and bypassing any
    attached journal.  This is the undo-log replay primitive: applying a
    journal's [(tuple, previous count)] records newest-to-oldest restores
    the pre-transaction contents, and replaying is idempotent. *)

val of_list : ?backend:backend -> ?name:string -> Schema.t -> Tuple.t list -> t

val equal_contents : t -> t -> bool
(** Same distinct tuples with the same multiplicities (backends may
    differ). *)

val equal_sets : t -> t -> bool
(** Same distinct tuples, multiplicities ignored. *)

val validate : t -> (unit, string) result
(** Re-check every stored tuple against the schema (and counts against
    positivity).  [insert] enforces this on entry; relations restored from
    a checkpoint bypassed insert and must be re-audited.  Columnar
    relations additionally run {!Column_store.audit}. *)

val filter : (Tuple.t -> bool) -> t -> t

val build_index : t -> int array -> (Tuple.t, int Tuple.Hashtbl.t) Hashtbl.t
(** [build_index r key_cols] maps each key projection to a counted bucket:
    every tuple carrying the key, with its current multiplicity.  Used for
    hash joins. *)

val get_index : t -> int array -> (Tuple.t, int Tuple.Hashtbl.t) Hashtbl.t
(** Like {!build_index} but, on the {!Row} backend, cached on the relation
    and maintained incrementally by subsequent inserts and removes
    (multiplicities included), so repeated joins on the same columns cost
    O(changes) instead of O(relation).  On {!Columnar} the index is built
    fresh on every call and never cached (plans probe the column store's
    own sorted runs instead).  The returned table must be treated as
    read-only. *)

val pp : Format.formatter -> t -> unit
