(** Named, schema-checked in-memory relations.

    Storage is a bag with per-tuple multiplicities ("derivation counts"),
    which is exactly the representation the DRed incremental view-maintenance
    algorithm needs (each delta relation carries a [count] column tracking
    the number of derivations of a tuple).  A relation with all counts equal
    to one behaves as a set. *)

type t

val create : ?name:string -> Schema.t -> t

val name : t -> string

val schema : t -> Schema.t

val cardinality : t -> int
(** Number of distinct tuples. *)

val total_count : t -> int
(** Sum of multiplicities. *)

val mem : t -> Tuple.t -> bool

val count : t -> Tuple.t -> int
(** Multiplicity; 0 when absent. *)

val insert : ?count:int -> t -> Tuple.t -> unit
(** Add [count] (default 1) derivations of a tuple.  Raises
    [Invalid_argument] when the tuple does not conform to the schema or
    [count <= 0]. *)

val remove : ?count:int -> t -> Tuple.t -> int
(** Subtract up to [count] derivations; returns how many were actually
    removed. The tuple disappears when its multiplicity reaches zero. *)

val delete_all : t -> Tuple.t -> unit
(** Drop a tuple regardless of multiplicity. *)

val clear : t -> unit

val iter : (Tuple.t -> int -> unit) -> t -> unit

val fold : (Tuple.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> Tuple.t list
(** Distinct tuples, unspecified order. *)

val to_counted_list : t -> (Tuple.t * int) list

val copy : t -> t
(** Deep copy of the tuple store.  Cached indexes ({!get_index}) are {e not}
    carried over: the copy starts with an empty index table, and the first
    [get_index] on it rebuilds from the copied rows.  Callers holding an
    index obtained from the original must not assume it reflects (or is
    shared with) the copy — the two relations maintain indexes
    independently from the moment of the copy. *)

val set_journal : t -> (Tuple.t -> int -> unit) option -> unit
(** Attach (or detach, with [None]) an undo-log hook.  While attached, every
    mutation of a tuple's multiplicity — {!insert}, {!remove},
    {!delete_all}, and each row dropped by {!clear} — first calls the hook
    with the tuple and its {e previous} count, so a transaction can record
    the inverse operation before the store changes.  The hook must not
    mutate the relation.  {!copy} does not carry the hook over, and the
    hook must be detached before the relation is marshalled (closures do
    not marshal). *)

val restore_count : t -> Tuple.t -> int -> unit
(** [restore_count t tup n] forces [tup]'s multiplicity to exactly [n]
    ([n <= 0] removes it), maintaining cached indexes and bypassing any
    attached journal.  This is the undo-log replay primitive: applying a
    journal's [(tuple, previous count)] records newest-to-oldest restores
    the pre-transaction contents, and replaying is idempotent. *)

val of_list : ?name:string -> Schema.t -> Tuple.t list -> t

val equal_contents : t -> t -> bool
(** Same distinct tuples with the same multiplicities. *)

val equal_sets : t -> t -> bool
(** Same distinct tuples, multiplicities ignored. *)

val validate : t -> (unit, string) result
(** Re-check every stored tuple against the schema (and counts against
    positivity).  [insert] enforces this on entry; relations restored from
    a checkpoint bypassed insert and must be re-audited. *)

val filter : (Tuple.t -> bool) -> t -> t

val build_index : t -> int array -> (Tuple.t, Tuple.t list) Hashtbl.t
(** [build_index r key_cols] maps each key projection to the distinct tuples
    carrying it; used for hash joins. *)

val get_index : t -> int array -> (Tuple.t, Tuple.t list) Hashtbl.t
(** Like {!build_index} but cached on the relation and maintained
    incrementally by subsequent inserts and removes, so repeated joins on
    the same columns cost O(changes) instead of O(relation).  The returned
    table must be treated as read-only. *)

val pp : Format.formatter -> t -> unit
