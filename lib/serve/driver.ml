module Engine = Dd_core.Engine
module Txn = Dd_core.Txn
module Pipeline = Dd_kbc.Pipeline
module Pool = Dd_parallel.Pool
module Prng = Dd_util.Prng

type reader_report = {
  reads : int;
  min_epoch : int;
  max_epoch : int;
  distinct_epochs : int;
  monotone : bool;
  verifies : int;
  verify_failures : string list;
}

type report = {
  steps : Pipeline.drive_step list;
  readers : reader_report array;
  health : Server.health;
  final_identical : bool;
  elapsed_s : float;
}

let bits = Int64.bits_of_float

let marginals_identical a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if bits x <> bits b.(i) then ok := false) a;
  !ok

(* One reader iteration: a pinned multi-query read.  Everything happens
   against the single snapshot the [read] pinned, so the epoch, the
   threshold counts and the top-k all describe one consistent state; the
   periodic full [Snapshot.verify] is the torn-read detector. *)
let reader_step server rng ~verify () =
  Server.read server (fun snap ->
      let epoch = Snapshot.epoch snap in
      let failure =
        if verify then (
          match Snapshot.verify snap with Ok () -> None | Error m -> Some m)
        else begin
          (* Cheap consistency probes on the pinned snapshot. *)
          let n = Snapshot.num_facts snap in
          let thr = float_of_int (Prng.int_below rng 1000) /. 1000.0 in
          let c = Snapshot.count_above snap thr in
          let above = Snapshot.top_k snap c in
          if c > n then Some "count_above exceeds num_facts"
          else if List.exists (fun f -> f.Snapshot.probability < thr) above then
            Some "top-k prefix disagrees with count_above"
          else None
        end
      in
      (epoch, failure))

let run ?(readers = 2) ?(verify_every = 64) ?bins ?truth ?semantics ?txn_options
    ?(pace_s = 0.0) ?on_step engine rule_ids =
  let txn = Txn.create ?options:txn_options engine in
  let server = Server.create ?bins ?truth txn in
  let stop = Atomic.make false in
  let steps = ref [] in
  let reports = Array.make (max 1 readers) None in
  let pool = Pool.create (max 1 readers + 1) in
  let t0 = Unix.gettimeofday () in
  (let writer () =
     Fun.protect
       ~finally:(fun () -> Atomic.set stop true)
       (fun () ->
         let on_step step =
           (match on_step with Some f -> f step | None -> ());
           if pace_s > 0.0 then Unix.sleepf pace_s
         in
         let _, s = Pipeline.drive ?semantics ~txn ~on_step (Txn.engine txn) rule_ids in
         steps := s)
   in
   let reader d () =
     let rng = Prng.create (0x5e7e + d) in
     let reads = ref 0 and verifies = ref 0 and distinct = ref 0 in
     let min_epoch = ref max_int and max_epoch = ref 0 in
     let last = ref 0 in
     let monotone = ref true in
     let failures = ref [] in
     let observe () =
       let verify = verify_every > 0 && !reads mod verify_every = 0 in
       let epoch, failure = reader_step server rng ~verify () in
       incr reads;
       if verify then incr verifies;
       (match failure with Some m -> failures := m :: !failures | None -> ());
       if epoch < !last then monotone := false;
       if epoch <> !last then incr distinct;
       last := epoch;
       if epoch < !min_epoch then min_epoch := epoch;
       if epoch > !max_epoch then max_epoch := epoch
     in
     while not (Atomic.get stop) do
       observe ()
     done;
     (* One final read so every reader also sees the post-drive state. *)
     observe ();
     reports.(d - 1) <-
       Some
         {
           reads = !reads;
           min_epoch = !min_epoch;
           max_epoch = !max_epoch;
           distinct_epochs = !distinct;
           monotone = !monotone;
           verifies = !verifies;
           verify_failures = List.rev !failures;
         }
   in
   Fun.protect
     ~finally:(fun () -> Pool.shutdown pool)
     (fun () -> Pool.run pool (fun d -> if d = 0 then writer () else reader d ())));
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let final_identical =
    marginals_identical
      (Snapshot.marginals (Server.current server))
      (Engine.marginals (Txn.engine txn))
  in
  let readers =
    Array.map
      (function
        | Some r -> r
        | None ->
          {
            reads = 0;
            min_epoch = 0;
            max_epoch = 0;
            distinct_epochs = 0;
            monotone = true;
            verifies = 0;
            verify_failures = [ "reader produced no report" ];
          })
      reports
  in
  (txn, server, { steps = !steps; readers; health = Server.health server; final_identical; elapsed_s })
