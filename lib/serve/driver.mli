(** Concurrent serving driver: readers query while the writer commits.

    [run] wires the whole serving stack together: a {!Dd_core.Txn}
    supervisor over the given engine, a {!Server} subscribed to it, a
    writer domain pushing a {!Dd_kbc.Pipeline} snapshot sequence through
    the supervisor, and [readers] domains hammering the server the whole
    time.  Each reader records the epochs it observed (they must be
    monotone), runs cheap cross-query consistency probes on every pinned
    read, and a full {!Snapshot.verify} every [verify_every] reads — the
    torn-snapshot detector the stress tests assert on.

    The driver is the harness behind both the fault-sweep stress test
    (arm a {!Dd_util.Fault} point, drive, assert no reader ever saw an
    inconsistent snapshot) and the [bench serving] read-throughput and
    staleness measurements. *)

module Txn = Dd_core.Txn
module Pipeline = Dd_kbc.Pipeline

type reader_report = {
  reads : int;
  min_epoch : int;
  max_epoch : int;
  distinct_epochs : int;  (** number of epoch transitions observed *)
  monotone : bool;  (** epochs never went backwards *)
  verifies : int;  (** full {!Snapshot.verify} audits run *)
  verify_failures : string list;  (** must be [[]]; any entry is a torn read *)
}

type report = {
  steps : Pipeline.drive_step list;  (** per-update outcomes, in order *)
  readers : reader_report array;
  health : Server.health;  (** health surface after the stream drained *)
  final_identical : bool;
      (** served marginals bit-identical to the live engine's at the end *)
  elapsed_s : float;
}

val run :
  ?readers:int ->
  ?verify_every:int ->
  ?bins:int ->
  ?truth:Dd_kbc.Corpus.fact list ->
  ?semantics:Dd_fgraph.Semantics.t ->
  ?txn_options:Txn.options ->
  ?pace_s:float ->
  ?on_step:(Pipeline.drive_step -> unit) ->
  Dd_core.Engine.t ->
  Pipeline.rule_id list ->
  Txn.t * Server.t * report
(** Drive [rule_ids] through a fresh supervisor while [readers] (default
    2, minimum 1) reader domains query concurrently; returns once the
    stream has drained and every reader has taken a final post-drive
    read.  [verify_every] sets the full-audit cadence (0 disables; default
    64).  [pace_s] sleeps after each committed step — the update-cadence
    knob for staleness measurements.  [on_step] runs on the writer domain
    after each step.  The supervisor and server are returned alongside
    the report for further inspection (dead letters, extra queries). *)
