module Tuple = Dd_relational.Tuple
module Txn = Dd_core.Txn

(* One published snapshot plus its retirement state.  [pins] counts
   readers currently inside a [read] on this snapshot; [superseded] is set
   by the writer when a newer snapshot replaces it; [retired] flips once,
   when a superseded slot's last reader leaves (or it was idle at swap
   time).  The GC keeps the memory safe regardless — retirement exists so
   the health surface can prove old epochs actually drain. *)
type slot = {
  snap : Snapshot.t;
  pins : int Atomic.t;
  superseded : bool Atomic.t;
  retired : bool Atomic.t;
}

type counters = {
  lookups : int;
  scans : int;
  top_ks : int;
  entities : int;
  generic : int;
}

type health = {
  epoch : int;
  txn_seq : int;
  writer_commits : int;
  staleness_commits : int;
  staleness_s : float;
  degraded : string option;
  quarantined : int;
  swaps : int;
  retired : int;
  active_pins : int;
  last_swap_ms : float;
  mean_swap_ms : float;
  max_swap_ms : float;
  scrubs : int;
  scrub_repaired : int;
  scrub_quarantined : int;
  scrub_unrepaired : int;
  last_scrub_healthy : bool option;
  counters : counters;
}

type t = {
  current : slot Atomic.t;
  (* Writer-side state.  Only the supervisor's domain touches these; the
     health surface reads them through the atomics below. *)
  mutable next_epoch : int;
  bins : int;
  truth : Dd_kbc.Corpus.fact list option;
  (* Cross-domain observability. *)
  writer_commits : int Atomic.t;
  degraded : string option Atomic.t;
  quarantined : int Atomic.t;
  swaps : int Atomic.t;
  retired_count : int Atomic.t;
  last_swap_ns : int Atomic.t;
  total_swap_ns : int Atomic.t;
  max_swap_ns : int Atomic.t;
  s_passes : int Atomic.t;
  s_repaired : int Atomic.t;
  s_quarantined : int Atomic.t;
  s_unrepaired : int Atomic.t;
  s_last_healthy : int Atomic.t;  (* -1 = never scrubbed, 0 = unhealthy, 1 = healthy *)
  c_lookups : int Atomic.t;
  c_scans : int Atomic.t;
  c_top_ks : int Atomic.t;
  c_entities : int Atomic.t;
  c_generic : int Atomic.t;
}

let fresh_slot snap =
  {
    snap;
    pins = Atomic.make 0;
    superseded = Atomic.make false;
    retired = Atomic.make false;
  }

(* Flip [retired] exactly once per slot and account for it. *)
let try_retire t slot =
  if
    Atomic.get slot.superseded
    && Atomic.get slot.pins = 0
    && Atomic.compare_and_set slot.retired false true
  then Atomic.incr t.retired_count

let publish t engine ~txn_seq =
  let t0 = Unix.gettimeofday () in
  let epoch = t.next_epoch in
  t.next_epoch <- epoch + 1;
  let snap = Snapshot.build ~bins:t.bins ?truth:t.truth ~epoch ~txn_seq engine in
  let old = Atomic.exchange t.current (fresh_slot snap) in
  Atomic.set old.superseded true;
  try_retire t old;
  Atomic.incr t.swaps;
  let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  Atomic.set t.last_swap_ns ns;
  ignore (Atomic.fetch_and_add t.total_swap_ns ns);
  if ns > Atomic.get t.max_swap_ns then Atomic.set t.max_swap_ns ns

let create ?(bins = 10) ?truth txn =
  let snap =
    Snapshot.build ~bins ?truth ~epoch:1 ~txn_seq:(Txn.commits txn) (Txn.engine txn)
  in
  let t =
    {
      current = Atomic.make (fresh_slot snap);
      next_epoch = 2;
      bins;
      truth;
      writer_commits = Atomic.make (Txn.commits txn);
      degraded = Atomic.make None;
      quarantined = Atomic.make 0;
      swaps = Atomic.make 0;
      retired_count = Atomic.make 0;
      last_swap_ns = Atomic.make 0;
      total_swap_ns = Atomic.make 0;
      max_swap_ns = Atomic.make 0;
      s_passes = Atomic.make 0;
      s_repaired = Atomic.make 0;
      s_quarantined = Atomic.make 0;
      s_unrepaired = Atomic.make 0;
      s_last_healthy = Atomic.make (-1);
      c_lookups = Atomic.make 0;
      c_scans = Atomic.make 0;
      c_top_ks = Atomic.make 0;
      c_entities = Atomic.make 0;
      c_generic = Atomic.make 0;
    }
  in
  Txn.on_event txn (function
    | Txn.Committed _ ->
      Atomic.set t.writer_commits (Txn.commits txn);
      Atomic.set t.degraded None;
      publish t (Txn.engine txn) ~txn_seq:(Txn.commits txn)
    | Txn.Degraded rung -> Atomic.set t.degraded (Some (Txn.rung_to_string rung))
    | Txn.Quarantined _ ->
      Atomic.incr t.quarantined;
      Atomic.set t.degraded None;
      (* The engine was rolled back (and, if the ladder reached the rerun
         rung, replaced) — re-publish so served state tracks the live
         engine even across a failed update. *)
      publish t (Txn.engine txn) ~txn_seq:(Txn.commits txn));
  t

let current t = (Atomic.get t.current).snap

(* Pin the slot the pointer names right now.  If the writer retired it in
   the window between our load and our pin (possible only when the slot
   was idle, i.e. we had not pinned yet), drop it and take the fresh
   pointer — this keeps "retired" ⇒ "no reader will ever use it again". *)
let rec acquire t =
  let slot = Atomic.get t.current in
  Atomic.incr slot.pins;
  if Atomic.get slot.retired then begin
    ignore (Atomic.fetch_and_add slot.pins (-1));
    acquire t
  end
  else slot

let release t slot =
  if Atomic.fetch_and_add slot.pins (-1) = 1 then try_retire t slot

let read_with t counter f =
  Atomic.incr counter;
  let slot = acquire t in
  match f slot.snap with
  | v ->
    release t slot;
    v
  | exception e ->
    release t slot;
    raise e

let read t f = read_with t t.c_generic f

let lookup t ~relation tuple =
  read_with t t.c_lookups (fun s -> Snapshot.lookup s ~relation tuple)

let top_k t ?relation k = read_with t t.c_top_ks (fun s -> Snapshot.top_k s ?relation k)

let above t ?relation threshold =
  read_with t t.c_scans (fun s -> Snapshot.above s ?relation threshold)

let count_above t ?relation threshold =
  read_with t t.c_scans (fun s -> Snapshot.count_above s ?relation threshold)

let entity_facts t value = read_with t t.c_entities (fun s -> Snapshot.entity_facts s value)

let health t =
  let slot = Atomic.get t.current in
  let snap = slot.snap in
  let ms ns = float_of_int ns /. 1e6 in
  let swaps = Atomic.get t.swaps in
  {
    epoch = Snapshot.epoch snap;
    txn_seq = Snapshot.txn_seq snap;
    writer_commits = Atomic.get t.writer_commits;
    staleness_commits = max 0 (Atomic.get t.writer_commits - Snapshot.txn_seq snap);
    staleness_s = Unix.gettimeofday () -. Snapshot.published_s snap;
    degraded = Atomic.get t.degraded;
    quarantined = Atomic.get t.quarantined;
    swaps;
    retired = Atomic.get t.retired_count;
    active_pins = Atomic.get slot.pins;
    last_swap_ms = ms (Atomic.get t.last_swap_ns);
    mean_swap_ms = (if swaps = 0 then 0.0 else ms (Atomic.get t.total_swap_ns) /. float_of_int swaps);
    max_swap_ms = ms (Atomic.get t.max_swap_ns);
    scrubs = Atomic.get t.s_passes;
    scrub_repaired = Atomic.get t.s_repaired;
    scrub_quarantined = Atomic.get t.s_quarantined;
    scrub_unrepaired = Atomic.get t.s_unrepaired;
    last_scrub_healthy =
      (match Atomic.get t.s_last_healthy with -1 -> None | 0 -> Some false | _ -> Some true);
    counters =
      {
        lookups = Atomic.get t.c_lookups;
        scans = Atomic.get t.c_scans;
        top_ks = Atomic.get t.c_top_ks;
        entities = Atomic.get t.c_entities;
        generic = Atomic.get t.c_generic;
      };
  }

(* The scrub loop runs on the writer's side (it may republish
   checkpoints); the counters cross domains through the atomics. *)
let record_scrub t (r : Dd_kbc.Scrub.report) =
  let open Dd_kbc.Scrub in
  Atomic.incr t.s_passes;
  ignore
    (Atomic.fetch_and_add t.s_repaired
       (r.tables_repaired + r.tables_rebuilt + r.blobs_rewritten));
  ignore
    (Atomic.fetch_and_add t.s_quarantined
       (r.versions_quarantined + r.blobs_quarantined
       + if r.dead_letters_quarantined then 1 else 0));
  ignore (Atomic.fetch_and_add t.s_unrepaired (List.length r.unrepaired));
  Atomic.set t.s_last_healthy (if healthy r then 1 else 0)
