(** Concurrent fact server: one writer, many readers, atomic snapshots.

    The server owns an atomic pointer to the current {!Snapshot}.  A
    writer — the {!Dd_core.Txn} supervisor the server subscribes to at
    {!create} — builds a fresh snapshot after every committed update and
    swaps it in with a single atomic exchange; readers on other domains
    pin the snapshot they start with (one atomic increment), query it
    lock-free, and unpin.  Because snapshots are immutable, a reader
    always observes one internally consistent epoch no matter how many
    swaps happen mid-query, and epoch-based retirement lets the health
    surface report when superseded snapshots have fully drained.

    Degradation is first-class: the supervisor's ladder events
    ({!Dd_core.Txn.event}) drive a visible writer status, and a
    quarantined update triggers a re-publish from the rolled-back engine
    so the served state never diverges from the live one — even when the
    failed attempt reached the rerun rung and replaced the engine. *)

module Tuple = Dd_relational.Tuple
module Txn = Dd_core.Txn

type t

val create : ?bins:int -> ?truth:Dd_kbc.Corpus.fact list -> Txn.t -> t
(** Build the initial snapshot (epoch 1) from the supervisor's engine and
    subscribe to its events: every commit publishes a new epoch, ladder
    rungs set the degraded status, and a quarantine re-publishes the
    rolled-back state.  [bins]/[truth] configure calibration for every
    snapshot the server builds (see {!Snapshot.build}). *)

val current : t -> Snapshot.t
(** The latest published snapshot (unpinned peek — fine for one-shot
    inspection; use {!read} to keep a consistent view across queries). *)

val read : t -> (Snapshot.t -> 'a) -> 'a
(** Pin the current snapshot, run the query against it, unpin.  The
    callback sees exactly one epoch regardless of concurrent swaps.
    Safe from any domain. *)

(** {1 Typed queries} — each is a pinned read that bumps its counter. *)

val lookup : t -> relation:string -> Tuple.t -> Snapshot.fact option
val top_k : t -> ?relation:string -> int -> Snapshot.fact list
val above : t -> ?relation:string -> float -> Snapshot.fact list
val count_above : t -> ?relation:string -> float -> int
val entity_facts : t -> string -> Snapshot.fact list

(** {1 Health} *)

type counters = {
  lookups : int;
  scans : int;  (** {!above} + {!count_above} *)
  top_ks : int;
  entities : int;
  generic : int;  (** {!read} calls made directly *)
}

type health = {
  epoch : int;  (** serving epoch *)
  txn_seq : int;  (** commit sequence the snapshot was built at *)
  writer_commits : int;  (** commits the supervisor has applied so far *)
  staleness_commits : int;  (** commits the served snapshot is behind *)
  staleness_s : float;  (** wall-clock age of the served snapshot *)
  degraded : string option;
      (** ladder rung the writer is currently attempting, if any *)
  quarantined : int;  (** quarantines observed since {!create} *)
  swaps : int;  (** snapshots published after the initial one *)
  retired : int;  (** superseded snapshots fully drained of readers *)
  active_pins : int;  (** readers currently pinned to the serving snapshot *)
  last_swap_ms : float;  (** build+publish latency of the latest swap *)
  mean_swap_ms : float;
  max_swap_ms : float;
  scrubs : int;  (** scrub passes recorded via {!record_scrub} *)
  scrub_repaired : int;
      (** artifacts healed across all passes (tables repaired or rebuilt,
          blobs rewritten from live state) *)
  scrub_quarantined : int;
      (** artifacts set aside across all passes (checkpoint versions,
          blobs, dead-letter files) *)
  scrub_unrepaired : int;
      (** tables reported as needing scratch regrounding, cumulative *)
  last_scrub_healthy : bool option;
      (** verdict of the most recent pass; [None] before the first *)
  counters : counters;
}

val health : t -> health
(** Snapshot of the serving health surface; safe from any domain. *)

val record_scrub : t -> Dd_kbc.Scrub.report -> unit
(** Fold one {!Dd_kbc.Scrub.run} report into the health counters.  Call
    from the writer side, right after the scrub pass. *)
