(* Immutable published snapshot: everything the read side serves, built
   once on the writer's domain and then shared read-only.  All indexes are
   precomputed here so reader queries are hash/array lookups with no
   locking; the marginals CRC gives tests a way to prove a concurrent
   read was not torn (a correctly published snapshot can never fail it —
   the value is computed over the same immutable arrays readers see). *)

module Tuple = Dd_relational.Tuple
module Value = Dd_relational.Value
module Graph = Dd_fgraph.Graph
module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Calibration = Dd_kbc.Calibration
module Crc32 = Dd_util.Crc32

type fact = {
  relation : string;
  tuple : Tuple.t;
  probability : float;
  calibrated : float;
  evidence : bool;
}

type t = {
  epoch : int;
  txn_seq : int;
  published_s : float;
  facts : fact array;  (* probability desc, then (relation, tuple) asc *)
  by_relation : (string, fact array) Hashtbl.t;  (* same order, per relation *)
  index : (string, fact Tuple.Hashtbl.t) Hashtbl.t;
  entity : (string, fact list) Hashtbl.t;  (* value -> facts, best first *)
  calibration : Calibration.report option;
  buckets : Calibration.bucket array;  (* [||] without truth *)
  marginals : float array;
  marginals_crc : Crc32.t;
}

(* Total deterministic order: ties in probability break on name so two
   builds of the same engine state produce identical arrays. *)
let order a b =
  match compare b.probability a.probability with
  | 0 -> (
    match compare a.relation b.relation with
    | 0 -> Tuple.compare a.tuple b.tuple
    | c -> c)
  | c -> c

let marginals_digest marginals = Crc32.string (Marshal.to_string (marginals : float array) [])

let build ?(bins = 10) ?truth ~epoch ~txn_seq engine =
  let grounding = Engine.grounding engine in
  let g = Engine.graph engine in
  let marginals = Array.copy (Engine.marginals engine) in
  let calibration =
    Option.map (fun truth -> Calibration.evaluate ~bins grounding marginals ~truth) truth
  in
  let buckets =
    match calibration with
    | Some report -> Array.of_list report.Calibration.buckets
    | None -> [||]
  in
  let calibrate p =
    let n = Array.length buckets in
    if n = 0 then p
    else
      let b = min (n - 1) (max 0 (int_of_float (p *. float_of_int n))) in
      let bucket = buckets.(b) in
      if bucket.Calibration.count = 0 then p else bucket.Calibration.empirical_precision
  in
  let facts =
    List.map
      (fun (relation, tuple, probability) ->
        let evidence =
          match Grounding.var_of grounding relation tuple with
          | Some v -> Graph.evidence_of g v <> Graph.Query
          | None -> false
        in
        { relation; tuple; probability; calibrated = calibrate probability; evidence })
      (Grounding.marginals_by_relation grounding marginals)
  in
  let facts = Array.of_list facts in
  Array.sort order facts;
  let by_relation = Hashtbl.create 8 in
  let index = Hashtbl.create 8 in
  let entity = Hashtbl.create (Array.length facts * 2) in
  (* Group per relation preserving the global (sorted) order. *)
  let groups : (string, fact list ref) Hashtbl.t = Hashtbl.create 8 in
  for i = Array.length facts - 1 downto 0 do
    let f = facts.(i) in
    (match Hashtbl.find_opt groups f.relation with
    | Some cell -> cell := f :: !cell
    | None -> Hashtbl.add groups f.relation (ref [ f ]));
    (* Prepending while walking least-probable-first leaves every entity
       posting list most-probable-first. *)
    let seen = ref [] in
    Array.iter
      (function
        | Value.Str s when not (List.mem s !seen) ->
          seen := s :: !seen;
          Hashtbl.replace entity s
            (f :: Option.value ~default:[] (Hashtbl.find_opt entity s))
        | _ -> ())
      f.tuple
  done;
  Hashtbl.iter
    (fun relation cell ->
      let arr = Array.of_list !cell in
      Hashtbl.replace by_relation relation arr;
      let table = Tuple.Hashtbl.create (Array.length arr) in
      Array.iter (fun f -> Tuple.Hashtbl.replace table f.tuple f) arr;
      Hashtbl.replace index relation table)
    groups;
  {
    epoch;
    txn_seq;
    published_s = Unix.gettimeofday ();
    facts;
    by_relation;
    index;
    entity;
    calibration;
    buckets;
    marginals;
    marginals_crc = marginals_digest marginals;
  }

let epoch t = t.epoch

let txn_seq t = t.txn_seq

let published_s t = t.published_s

let num_facts t = Array.length t.facts

let relations t =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.by_relation [])

let marginals t = Array.copy t.marginals

let lookup t ~relation tuple =
  match Hashtbl.find_opt t.index relation with
  | None -> None
  | Some table -> Tuple.Hashtbl.find_opt table tuple

let relation_facts t relation =
  match Hashtbl.find_opt t.by_relation relation with
  | Some arr -> Array.copy arr
  | None -> [||]

let pool t = function
  | Some relation -> (
    match Hashtbl.find_opt t.by_relation relation with Some arr -> arr | None -> [||])
  | None -> t.facts

let prefix arr n =
  let n = min n (Array.length arr) in
  List.init n (fun i -> arr.(i))

let top_k t ?relation k = prefix (pool t relation) (max 0 k)

(* First index whose probability drops below [threshold] in a
   descending-sorted array — the count of facts at or above it. *)
let cut arr threshold =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid).probability >= threshold then lo := mid + 1 else hi := mid
  done;
  !lo

let count_above t ?relation threshold = cut (pool t relation) threshold

let above t ?relation threshold =
  let arr = pool t relation in
  prefix arr (cut arr threshold)

let entity_facts t value = Option.value ~default:[] (Hashtbl.find_opt t.entity value)

let calibration t = t.calibration

let calibrated_bucket t p =
  let n = Array.length t.buckets in
  if n = 0 then None else Some t.buckets.(min (n - 1) (max 0 (int_of_float (p *. float_of_int n))))

(* --- integrity audit -------------------------------------------------------- *)

let verify t =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let ( let* ) = Result.bind in
  let* () = if t.epoch >= 1 then Ok () else fail "epoch %d < 1" t.epoch in
  let* () = if t.txn_seq >= 0 then Ok () else fail "txn_seq %d < 0" t.txn_seq in
  (* Global sort order and value ranges. *)
  let* () =
    let bad = ref None in
    Array.iteri
      (fun i f ->
        if !bad = None then begin
          if not (Float.is_finite f.probability && f.probability >= 0.0 && f.probability <= 1.0)
          then bad := Some (Printf.sprintf "fact %d probability %g out of range" i f.probability)
          else if
            not (Float.is_finite f.calibrated && f.calibrated >= 0.0 && f.calibrated <= 1.0)
          then bad := Some (Printf.sprintf "fact %d calibrated %g out of range" i f.calibrated)
          else if i > 0 && order t.facts.(i - 1) f > 0 then
            bad := Some (Printf.sprintf "facts unsorted at %d" i)
        end)
      t.facts;
    match !bad with Some m -> Error m | None -> Ok ()
  in
  (* Per-relation arrays partition the fact list and stay sorted. *)
  let* () =
    let total = Hashtbl.fold (fun _ arr acc -> acc + Array.length arr) t.by_relation 0 in
    if total <> Array.length t.facts then
      fail "per-relation arrays hold %d facts, snapshot has %d" total (Array.length t.facts)
    else Ok ()
  in
  let* () =
    Hashtbl.fold
      (fun relation arr acc ->
        let* () = acc in
        let bad = ref None in
        Array.iteri
          (fun i f ->
            if !bad = None then begin
              if f.relation <> relation then
                bad := Some (Printf.sprintf "%s holds a %s fact" relation f.relation)
              else if i > 0 && order arr.(i - 1) f > 0 then
                bad := Some (Printf.sprintf "%s unsorted at %d" relation i)
            end)
          arr;
        match !bad with Some m -> Error m | None -> Ok ())
      t.by_relation (Ok ())
  in
  (* Point lookups and the inverted index agree with the fact list. *)
  let* () =
    let bad = ref None in
    Array.iter
      (fun f ->
        if !bad = None then begin
          (match lookup t ~relation:f.relation f.tuple with
          | Some f' when f' == f -> ()
          | Some _ -> bad := Some ("lookup returned a different fact for " ^ Tuple.to_string f.tuple)
          | None -> bad := Some ("lookup missed " ^ Tuple.to_string f.tuple));
          Array.iter
            (function
              | Value.Str s ->
                if !bad = None && not (List.memq f (entity_facts t s)) then
                  bad := Some ("entity index missed " ^ s)
              | _ -> ())
            f.tuple
        end)
      t.facts;
    match !bad with Some m -> Error m | None -> Ok ()
  in
  (* Calibration arithmetic. *)
  let* () =
    match t.calibration with
    | None -> if t.buckets = [||] then Ok () else fail "buckets without a calibration report"
    | Some report ->
      let counted =
        List.fold_left (fun acc b -> acc + b.Calibration.count) 0 report.Calibration.buckets
      in
      if counted <> report.Calibration.total then
        fail "calibration buckets count %d, report total %d" counted report.Calibration.total
      else if Array.length t.buckets <> List.length report.Calibration.buckets then
        fail "bucket array does not match report"
      else Ok ()
  in
  (* Torn-read tripwire. *)
  if marginals_digest t.marginals = t.marginals_crc then Ok ()
  else fail "marginals CRC mismatch: torn snapshot"
