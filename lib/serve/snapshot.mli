(** An immutable published view of the engine's extracted facts.

    A snapshot is built from a quiescent engine — in practice inside a
    {!Dd_core.Txn} commit observer, when the engine holds exactly the
    committed state — and then never mutated: readers on other domains
    query it freely with no synchronization beyond the single atomic load
    that fetched it ({!Server}).  It packages everything a fact-serving
    API needs:

    - every query-relation tuple with its marginal probability and a
      {e calibrated} probability (the empirical precision of its
      calibration bucket, {!Dd_kbc.Calibration}, when a ground-truth
      sample is available — the paper's "if one examined all facts with
      probability 0.9, approximately 90% would be correct" contract,
      applied as a correction);
    - per-relation indexes sorted by probability (top-k and threshold
      scans are array-prefix reads);
    - a point-lookup index by (relation, tuple) and an inverted index
      from tuple values to facts;
    - the publishing transaction's commit sequence and the publication
      epoch, for staleness accounting;
    - a CRC over the marginals, so tests and paranoid readers can prove a
      read was not torn. *)

module Tuple = Dd_relational.Tuple
module Engine = Dd_core.Engine
module Calibration = Dd_kbc.Calibration

type fact = {
  relation : string;
  tuple : Tuple.t;
  probability : float;  (** raw marginal *)
  calibrated : float;  (** bucket-corrected probability (= raw without truth) *)
  evidence : bool;  (** clamped as evidence — training data, not a prediction *)
}

type t

val build :
  ?bins:int ->
  ?truth:Dd_kbc.Corpus.fact list ->
  epoch:int ->
  txn_seq:int ->
  Engine.t ->
  t
(** Snapshot the engine's current marginals.  [truth] enables calibration
    ([bins] buckets, default 10); without it facts carry their raw
    probability as [calibrated] and {!calibration} is [None].  The engine
    must not be mutated concurrently — call from the writer's domain. *)

(** {1 Identity} *)

val epoch : t -> int
val txn_seq : t -> int

val published_s : t -> float
(** Wall-clock publication time (seconds since the epoch). *)

val num_facts : t -> int

val relations : t -> string list
(** Query relations present, sorted. *)

val marginals : t -> float array
(** Fresh copy of the engine marginals at publication (variable-indexed). *)

(** {1 Queries} — all read-only, safe from any domain. *)

val lookup : t -> relation:string -> Tuple.t -> fact option

val relation_facts : t -> string -> fact array
(** Fresh copy, sorted by probability (descending). *)

val top_k : t -> ?relation:string -> int -> fact list
(** The [k] most probable facts, over one relation or all of them. *)

val above : t -> ?relation:string -> float -> fact list
(** Facts with [probability >= threshold], most probable first. *)

val count_above : t -> ?relation:string -> float -> int
(** [List.length (above ...)] without materializing the list (binary
    search on the sorted per-relation arrays). *)

val entity_facts : t -> string -> fact list
(** Facts whose tuple mentions the given string value (e.g. a mention id
    or relation name), most probable first. *)

val calibration : t -> Calibration.report option

val calibrated_bucket : t -> float -> Calibration.bucket option
(** Bucket a raw probability falls into, when calibration is available. *)

(** {1 Integrity} *)

val verify : t -> (unit, string) result
(** Full internal-consistency audit: sort order of every per-relation
    array, agreement of the point-lookup and inverted indexes with the
    fact list, probability/calibration ranges, calibration bucket
    arithmetic, and the marginals CRC.  [Ok] on every snapshot {!build}
    publishes; an [Error] means a reader observed torn state. *)
