type mention = {
  surface : string;
  first_token : int;
  last_token : int;
  start_offset : int;
  end_offset : int;
}

(* A token-trie over normalized name words: each node maps the next word to
   a child, and records whether a name ends here. *)
type node = { children : (string, node) Hashtbl.t; mutable terminal : bool }

(* The trie plus the set of case-normalized keys already inserted, so a
   streaming dictionary can grow without accumulating duplicate entries
   ("Obama", "OBAMA" and "obama." are one name) and callers can observe
   whether an insertion was new. *)
type dictionary = { root : node; keys : (string, unit) Hashtbl.t }

let make_node () = { children = Hashtbl.create 4; terminal = false }

let name_words name =
  List.filter_map
    (fun t ->
      let w = Tokenizer.normalize t.Tokenizer.text in
      if w = "" then None else Some w)
    (Tokenizer.tokenize name)

let normalize_name name = String.concat " " (name_words name)

let add_name dict name =
  let words = name_words name in
  if words = [] then false
  else begin
    let key = String.concat " " words in
    if Hashtbl.mem dict.keys key then false
    else begin
      Hashtbl.replace dict.keys key ();
      let rec insert node = function
        | [] -> node.terminal <- true
        | word :: rest ->
          let child =
            match Hashtbl.find_opt node.children word with
            | Some c -> c
            | None ->
              let c = make_node () in
              Hashtbl.replace node.children word c;
              c
          in
          insert child rest
      in
      insert dict.root words;
      true
    end
  end

let dictionary names =
  let dict = { root = make_node (); keys = Hashtbl.create 64 } in
  List.iter (fun name -> ignore (add_name dict name)) names;
  dict

let size dict = Hashtbl.length dict.keys

let mem dict name =
  match name_words name with
  | [] -> false
  | words -> Hashtbl.mem dict.keys (String.concat " " words)

let find dict tokens =
  let root = dict.root in
  let arr = Array.of_list tokens in
  let n = Array.length arr in
  let norm = Array.map (fun t -> Tokenizer.normalize t.Tokenizer.text) arr in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    (* Longest match starting at token !i. *)
    let best = ref (-1) in
    let rec walk node j =
      if node.terminal then best := j - 1;
      if j < n then
        match Hashtbl.find_opt node.children norm.(j) with
        | Some child -> walk child (j + 1)
        | None -> ()
    in
    (match Hashtbl.find_opt root.children norm.(!i) with
    | Some child -> walk child (!i + 1)
    | None -> ());
    if !best >= !i then begin
      let first = arr.(!i) and last = arr.(!best) in
      out :=
        {
          surface =
            String.concat " "
              (List.map (fun t -> t.Tokenizer.text) (Tokenizer.slice tokens !i (!best + 1)));
          first_token = !i;
          last_token = !best;
          start_offset = first.Tokenizer.start_offset;
          end_offset = last.Tokenizer.end_offset;
        }
        :: !out;
      i := !best + 1
    end
    else incr i
  done;
  List.rev !out

let find_in_sentence dict sentence = find dict (Tokenizer.tokenize sentence)
