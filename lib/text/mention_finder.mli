(** Dictionary-based mention finding — the entity-recognition stage of the
    KBC pipeline.

    Real DeepDive systems run statistical NER; the candidate-generation
    contract it must satisfy is only "high recall": every span that might
    name an entity should surface as a mention.  A dictionary matcher over
    known entity names (with greedy longest match) satisfies that contract
    for our synthetic corpora and for the examples, and exposes the same
    (sentence, mention span, surface form) shape downstream rules consume. *)

type mention = {
  surface : string;  (** the matched text, as written *)
  first_token : int;  (** index of the first matched token *)
  last_token : int;  (** index of the last matched token (inclusive) *)
  start_offset : int;
  end_offset : int;
}

type dictionary

val dictionary : string list -> dictionary
(** Build a matcher from entity names; matching is case-insensitive on
    normalized tokens and supports multi-token names.  Names that collide
    under normalization ("Obama" / "OBAMA") are stored once. *)

val add_name : dictionary -> string -> bool
(** Insert one name; [true] iff it was new under case normalization.
    Streaming dictionary growth is therefore idempotent: re-adding an
    existing (or differently-cased) name neither duplicates nor shadows
    the stored entry. Names that normalize to nothing are rejected. *)

val normalize_name : string -> string
(** The case-normalized key a name is stored under: normalized tokens
    joined with single spaces ("" when nothing survives normalization).
    Two names matching the same spans have equal keys — the string key the
    entity canonicalizer merges on. *)

val size : dictionary -> int
(** Distinct normalized names stored. *)

val mem : dictionary -> string -> bool
(** Whether the name (under normalization) is already stored. *)

val find : dictionary -> Tokenizer.token list -> mention list
(** Greedy longest-match scan (no overlapping mentions), left to right. *)

val find_in_sentence : dictionary -> string -> mention list
(** Tokenize then {!find}. *)
