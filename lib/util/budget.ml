(* Cooperative deadline budgets for long-running engine steps.

   Gibbs sweep loops and semi-naive grounding rounds poll an armed budget
   at their natural step boundaries (one sweep, one color phase, one delta
   batch); when the budget is exhausted the step raises [Exceeded] instead
   of hanging a domain pool.  The [Ticks] mode counts polls rather than
   wall-clock, so tests can exercise the timeout path deterministically. *)

exception Exceeded of string

type spec =
  | Unlimited
  | Ms of float
  | Ticks of int

(* [Tick] counts down atomically so that worker domains may poll the same
   armed budget concurrently (the domain-parallel sampler polls inside its
   color slices): the number of successful polls is exactly the armed tick
   count under any interleaving, and every poll past it raises. *)
type t =
  | No_limit
  | Deadline of { timer : Timer.t; limit_s : float }
  | Tick of { left : int Atomic.t }

let start = function
  | Unlimited -> No_limit
  | Ms ms -> Deadline { timer = Timer.start (); limit_s = max 0.0 ms /. 1000.0 }
  | Ticks n -> Tick { left = Atomic.make (max 0 n) }

let unlimited = No_limit

let check t site =
  match t with
  | No_limit -> ()
  | Deadline d -> if Timer.elapsed_s d.timer >= d.limit_s then raise (Exceeded site)
  | Tick k -> if Atomic.fetch_and_add k.left (-1) <= 0 then raise (Exceeded site)

let is_exceeded = function Exceeded _ -> true | _ -> false

let spec_to_string = function
  | Unlimited -> "unlimited"
  | Ms ms -> Printf.sprintf "%.1fms" ms
  | Ticks n -> Printf.sprintf "%d ticks" n
