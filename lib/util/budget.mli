(** Cooperative deadline budgets for long-running engine steps.

    A budget is armed once per engine step ({!start}) and polled at the
    step's natural unit boundaries — one Gibbs sweep, one color phase, one
    semi-naive delta batch.  When the budget is exhausted, {!check} raises
    {!Exceeded} with the polling site's name, turning a pathological update
    into a classified, recoverable failure instead of a hung domain pool.

    The {!Ticks} mode counts polls instead of wall-clock time, giving
    tests a deterministic way to drive the timeout path.

    Budgets are safe to poll from several domains at once — {!Ms} reads a
    wall clock and {!Ticks} counts down atomically — so the domain-parallel
    sampler polls the step budget inside its worker color slices, not only
    at coordinator barriers. *)

exception Exceeded of string
(** Carries the name of the polling site that ran out of budget. *)

type spec =
  | Unlimited
  | Ms of float  (** wall-clock milliseconds *)
  | Ticks of int  (** number of {!check} polls allowed (deterministic) *)

type t
(** An armed budget instance (one per step execution). *)

val start : spec -> t

val unlimited : t
(** A shared instance that never fires (the [Unlimited] spec, pre-armed). *)

val check : t -> string -> unit
(** [check t site] raises [Exceeded site] when the budget is exhausted.
    Cheap when unarmed. *)

val is_exceeded : exn -> bool

val spec_to_string : spec -> string
