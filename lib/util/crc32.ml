(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   Used as the integrity footer of the on-disk formats (ddgraph v2,
   checkpoints, the write-ahead log). *)

let polynomial = 0xEDB88320l

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor polynomial (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

type t = int32

let init : t = 0xFFFFFFFFl

let update_string crc s =
  let table = Lazy.force table in
  let crc = ref crc in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xFFl) in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  !crc

let finish crc = Int32.logxor crc 0xFFFFFFFFl

let string s = finish (update_string init s)

let to_hex crc = Printf.sprintf "%08lx" crc

let is_hex_digit = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false

let of_hex s =
  if String.length s <> 8 || not (String.for_all is_hex_digit s) then None
  else
    match Int64.of_string_opt ("0x" ^ s) with
    | Some v -> Some (Int64.to_int32 v)
    | None -> None
