(** CRC-32 (IEEE) checksums for the durable on-disk formats.

    Streaming usage: start from {!init}, fold {!update_string} over the
    content, and {!finish}; or use {!string} for one-shot digests.  The
    footer lines of ddgraph v2, checkpoints and WAL entries carry the
    digest in the fixed 8-character form of {!to_hex}. *)

type t = int32

val init : t

val update_string : t -> string -> t

val finish : t -> t

val string : string -> t
(** One-shot digest of a whole string. *)

val to_hex : t -> string
(** Fixed-width (8 lowercase hex digits) rendering. *)

val of_hex : string -> t option
(** Inverse of {!to_hex}; [None] on anything but 8 hex digits. *)
