(* Deterministic fault injection for crash-recovery testing.

   Durable-state code (checkpointing, serialization, the incremental
   engine) calls [hit "layer.operation.site"] at the places where a crash
   would be most damaging.  In production nothing is armed and a hit only
   registers the point name; the recovery harness arms one point at a
   time and drives the pipeline into a deterministic "crash" ([Injected]
   escapes like a power cut — the process state is abandoned and recovery
   starts from disk).

   The registry is global and single-threaded, matching the engine. *)

exception Injected of string

type mode =
  | Never
  | Nth of int  (* fail on exactly the nth hit (1-based) after arming *)
  | Probability of float  (* independent per-hit chance under [seed] *)

type point = {
  mutable mode : mode;
  mutable hits : int;  (* hits since the last [arm]/[reset] *)
  mutable fired : int;  (* injections since the last [arm]/[reset] *)
}

let registry : (string, point) Hashtbl.t = Hashtbl.create 32

(* One shared stream for Probability points: reseeded by [seed], advanced
   once per probabilistic hit, so a run's crash schedule is a pure function
   of the seed and the hit sequence. *)
let rng = ref (Prng.create 0)

let seed s = rng := Prng.create s

let find_or_register name =
  match Hashtbl.find_opt registry name with
  | Some p -> p
  | None ->
    let p = { mode = Never; hits = 0; fired = 0 } in
    Hashtbl.replace registry name p;
    p

let declare name = ignore (find_or_register name)

let arm name mode =
  let p = find_or_register name in
  p.mode <- mode;
  p.hits <- 0;
  p.fired <- 0

let disarm name = arm name Never

let reset () =
  Hashtbl.iter
    (fun _ p ->
      p.mode <- Never;
      p.hits <- 0;
      p.fired <- 0)
    registry

(* When > 0, hits register but never fire.  Used by the transactional
   supervisor's last-resort rollback: after bounded rollback retries under
   injection, the final attempt must be allowed to complete (rollback is
   idempotent, so re-running it under suppression is safe). *)
let suppress_depth = ref 0

let with_suppressed f =
  incr suppress_depth;
  Fun.protect ~finally:(fun () -> decr suppress_depth) f

(* Shared firing decision.  [check] is the non-raising form for faults
   whose effect is damage rather than death (a flipped bit, a skipped
   fsync): the caller applies the damage itself and the run continues. *)
let check name =
  let p = find_or_register name in
  p.hits <- p.hits + 1;
  let inject =
    match p.mode with
    | Never -> false
    | Nth n -> p.hits = n
    | Probability prob -> Prng.bernoulli !rng prob
  in
  if inject && !suppress_depth = 0 then begin
    p.fired <- p.fired + 1;
    true
  end
  else false

let hit name = if check name then raise (Injected name)

let hits name = match Hashtbl.find_opt registry name with Some p -> p.hits | None -> 0

let fired name = match Hashtbl.find_opt registry name with Some p -> p.fired | None -> 0

let registered () =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) registry [])

let is_injected = function Injected _ -> true | _ -> false
