(** Deterministic, seedable fault injection.

    Durability-sensitive code marks its crash-critical sites with
    [hit "layer.operation.site"] (dotted lowercase names, e.g.
    ["engine.apply_update.post_ground"]).  Unarmed points cost one
    hashtable lookup and never fire.  A test harness arms a single point
    ({!Nth} for an exact crash position, {!Probability} for seeded random
    schedules) and treats the escaping {!Injected} as a simulated crash:
    abandon all in-memory state and recover from disk.

    [Injected] deliberately does not extend any domain error type, so
    recovery code can tell a simulated crash from a real failure with
    {!is_injected}. *)

exception Injected of string
(** Carries the point name that fired. *)

type mode =
  | Never
  | Nth of int  (** fail on exactly the nth hit (1-based) after arming *)
  | Probability of float
      (** independent per-hit chance, drawn from the stream seeded by {!seed} *)

val declare : string -> unit
(** Register a point name without hitting it (makes it discoverable). *)

val hit : string -> unit
(** Mark a crash site; raises {!Injected} when the armed mode triggers. *)

val check : string -> bool
(** Like {!hit} but returns [true] instead of raising — for faults whose
    effect is silent damage the caller applies itself (a flipped bit, a
    skipped fsync) rather than a simulated process death.  Counts hits
    and firings identically to {!hit} and respects {!with_suppressed}. *)

val arm : string -> mode -> unit
(** Set a point's mode and reset its counters. *)

val disarm : string -> unit

val reset : unit -> unit
(** Disarm every point and zero all counters (names stay registered). *)

val seed : int -> unit
(** Reseed the stream backing {!Probability} points. *)

val hits : string -> int
(** Hits since the point was last armed/reset. *)

val fired : string -> int

val registered : unit -> string list
(** All point names seen so far, sorted. *)

val is_injected : exn -> bool

val with_suppressed : (unit -> 'a) -> 'a
(** [with_suppressed f] runs [f] with injection disabled: hits still
    register (and count), but armed points never fire.  This exists for
    exactly one caller — the transactional supervisor's last-resort
    rollback.  Rollback is idempotent, so after bounded retries under
    injection the supervisor re-runs it once suppressed rather than
    abandoning the engine in a half-restored state.  (A checkpoint-style
    harness treating [Injected] as a process crash should never need
    this.) *)
