(* Injectable file I/O for durability code.

   Every persistence path in the checkpoint store routes its reads and
   writes through this module so that the failures disks actually produce
   — torn writes, flipped bits, fsyncs that never reached the platter,
   renames that hit the directory before the data pages — can be injected
   deterministically from the {!Fault} registry.

   Two crash models compose here:

   - {!Fault.Injected} escaping a write is a {e process} death: whatever
     the write had already handed to the OS survives (the harness
     abandons in-memory state and recovers from disk).
   - {!crash_lose_volatile} is a {e power} cut: on top of the process
     death, every byte written since the last successful fsync is lost.
     The module tracks, per path, the length known durable (the last
     fsync) and truncates volatile files back to it.

   Silent faults ([io.atomic.bit_flip], [io.atomic.dropped_fsync]) use
   {!Fault.check}: the damage is applied and the run continues — the
   point of the scrub subsystem is to find exactly this kind of damage
   later.  Damage positions are drawn from a dedicated PRNG ({!seed}) so
   a schedule is reproducible from its seed alone. *)

let point_read_short = "io.read.short"
let point_torn_write = "io.atomic.torn_write"
let point_bit_flip = "io.atomic.bit_flip"
let point_dropped_fsync = "io.atomic.dropped_fsync"
let point_rename_before_flush = "io.atomic.rename_before_flush"
let point_append_torn = "io.wal.append_torn"

let all_points =
  [
    point_read_short;
    point_torn_write;
    point_bit_flip;
    point_dropped_fsync;
    point_rename_before_flush;
    point_append_torn;
  ]

let () = List.iter Fault.declare all_points

let rng = ref (Prng.create 0x10f11e)

let seed s = rng := Prng.create s

(* Per-path durability tracking.  [durable] is the byte length known to
   have reached stable storage; [volatile = true] means bytes past it sit
   only in the page cache and a power cut loses them. *)
type track = { mutable durable : int; mutable volatile : bool }

let tracks : (string, track) Hashtbl.t = Hashtbl.create 16

let reset () = Hashtbl.reset tracks

let track_of path =
  match Hashtbl.find_opt tracks path with
  | Some tr -> tr
  | None ->
    let tr = { durable = 0; volatile = false } in
    Hashtbl.replace tracks path tr;
    tr

let mark_durable path len =
  let tr = track_of path in
  tr.durable <- len;
  tr.volatile <- false

(* The file was just replaced wholesale; only [durable] bytes of the new
   content are guaranteed. *)
let mark_volatile_set path durable =
  let tr = track_of path in
  tr.durable <- durable;
  tr.volatile <- true

(* Appended bytes are volatile; the previously-fsynced prefix stands. *)
let mark_volatile_keep path =
  let tr = track_of path in
  tr.volatile <- true

let attach path len = mark_durable path len

(* A strict prefix: the interesting torn lengths include 0 (nothing made
   it) and everything short of complete. *)
let prefix_len len = if len <= 0 then 0 else Prng.int_below !rng len

let fsync_fd fd = try Unix.fsync fd with Unix.Unix_error _ -> ()

let fsync_channel ch = fsync_fd (Unix.descr_of_out_channel ch)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd -> Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> fsync_fd fd)

let crash_lose_volatile () =
  Hashtbl.iter
    (fun path tr ->
      if tr.volatile then begin
        (try
           let size = (Unix.stat path).Unix.st_size in
           if tr.durable < size then Unix.truncate path tr.durable
         with Unix.Unix_error _ -> ());
        tr.volatile <- false
      end)
    tracks

let read_file path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if Fault.check point_read_short && String.length content > 0 then
    String.sub content 0 (prefix_len (String.length content))
  else content

let flip_one_bit content =
  let b = Bytes.of_string content in
  let pos = Prng.int_below !rng (Bytes.length b) in
  let bit = Prng.int_below !rng 8 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
  Bytes.to_string b

let write_file ?(fsync = true) path content =
  if Fault.check point_torn_write then begin
    (* The process dies mid-write: a prefix reached the fd, none of it is
       known durable. *)
    let keep = prefix_len (String.length content) in
    let oc = open_out_bin path in
    output_string oc (String.sub content 0 keep);
    close_out_noerr oc;
    mark_volatile_set path 0;
    raise (Fault.Injected point_torn_write)
  end;
  let content =
    if String.length content > 0 && Fault.check point_bit_flip then
      flip_one_bit content
    else content
  in
  let oc = open_out_bin path in
  (match output_string oc content with
  | () -> ()
  | exception e ->
    close_out_noerr oc;
    raise e);
  flush oc;
  if fsync then begin
    if Fault.check point_dropped_fsync then begin
      (* The fsync "succeeded" without reaching the platter: some prefix
         happens to be on disk, the rest is page cache. *)
      close_out_noerr oc;
      mark_volatile_set path (prefix_len (String.length content))
    end
    else begin
      fsync_channel oc;
      close_out oc;
      mark_durable path (String.length content)
    end
  end
  else close_out oc

let rename_durable ?(fsync = true) src dst =
  if Fault.check point_rename_before_flush then begin
    (* The rename reached the directory before [src]'s data pages were
       flushed, and the machine died: [dst] exists but is torn. *)
    let size = try (Unix.stat src).Unix.st_size with Unix.Unix_error _ -> 0 in
    let keep = prefix_len size in
    (try Unix.truncate src keep with Unix.Unix_error _ -> ());
    (try Sys.rename src dst with Sys_error _ -> ());
    Hashtbl.remove tracks src;
    mark_durable dst keep;
    raise (Fault.Injected point_rename_before_flush)
  end;
  Sys.rename src dst;
  (* Durability state travels with the content. *)
  (match Hashtbl.find_opt tracks src with
  | Some tr ->
    Hashtbl.remove tracks src;
    Hashtbl.replace tracks dst tr
  | None -> ());
  if fsync then fsync_dir (Filename.dirname dst)

let write_atomic ?(fsync = true) path content =
  let tmp = path ^ ".tmp" in
  (match write_file ~fsync tmp content with
  | () -> ()
  | exception e ->
    (match e with
    | Fault.Injected _ -> () (* crash model: the torn tmp file stays *)
    | _ -> ( try Sys.remove tmp with Sys_error _ -> ()));
    raise e);
  rename_durable ~fsync tmp path

let append ~path ch s =
  if Fault.check point_append_torn then begin
    let keep = prefix_len (String.length s) in
    output_string ch (String.sub s 0 keep);
    (try flush ch with Sys_error _ -> ());
    mark_volatile_keep path;
    raise (Fault.Injected point_append_torn)
  end;
  output_string ch s

let flush_fsync ?(fsync = true) ~path ch =
  flush ch;
  if fsync then begin
    if Fault.check point_dropped_fsync then mark_volatile_keep path
    else begin
      fsync_channel ch;
      mark_durable path (pos_out ch)
    end
  end
