(** Injectable file I/O for durability code.

    The checkpoint store routes every read and write through this module
    so the failures disks actually produce can be injected
    deterministically via the {!Fault} registry:

    - ["io.read.short"] — a whole-file read returns only a prefix.
    - ["io.atomic.torn_write"] — a write dies mid-way (prefix on disk),
      raising {!Fault.Injected} (process-death model).
    - ["io.atomic.bit_flip"] — one bit of the written content is flipped
      {e silently}; the run continues (scrub's job to find it).
    - ["io.atomic.dropped_fsync"] — the fsync silently never reaches
      stable storage; a later {!crash_lose_volatile} loses the tail.
    - ["io.atomic.rename_before_flush"] — the rename hits the directory
      before the data pages flush; the target exists but is torn
      (raises, process+power death).
    - ["io.wal.append_torn"] — an append dies mid-entry (raises).

    Damage positions (how much of a prefix survives, which bit flips)
    come from a dedicated PRNG reseeded with {!seed}, so a fault schedule
    is a pure function of its seed.

    The module tracks, per path, the byte length last made durable by a
    successful fsync.  {!crash_lose_volatile} simulates a power cut on
    top of a process death: every file with unsynced bytes is truncated
    back to its durable prefix. *)

val all_points : string list
(** The [io.*] fault-point names above (registered at module init). *)

val seed : int -> unit
(** Reseed the damage-position PRNG (independent of {!Fault.seed}). *)

val reset : unit -> unit
(** Forget all per-path durability tracking. *)

val read_file : string -> string
(** Whole-file read ([io.read.short] applies).  Raises [Sys_error] as
    [open_in] does. *)

val write_file : ?fsync:bool -> string -> string -> unit
(** Plain (non-atomic) whole-file write; flushes and — with [fsync]
    (default [true]) — fsyncs the data.  [io.atomic.torn_write],
    [io.atomic.bit_flip] and [io.atomic.dropped_fsync] apply. *)

val rename_durable : ?fsync:bool -> string -> string -> unit
(** [rename_durable src dst] renames and then fsyncs the containing
    directory so the rename itself is durable.
    [io.atomic.rename_before_flush] applies. *)

val write_atomic : ?fsync:bool -> string -> string -> unit
(** Durable atomic publish: {!write_file} to [path ^ ".tmp"] (data
    fsync), then {!rename_durable} into place (directory fsync).  A crash
    at any instant leaves either the old content or the new, never a
    mix — provided no silent fault was injected. *)

val append : path:string -> out_channel -> string -> unit
(** Append to an open log channel ([io.wal.append_torn] applies).
    [path] names the channel's file for durability tracking. *)

val flush_fsync : ?fsync:bool -> path:string -> out_channel -> unit
(** Flush and fsync an append channel, recording the new durable length
    ([io.atomic.dropped_fsync] applies). *)

val attach : string -> int -> unit
(** Declare that the first [len] bytes of a path are known durable (used
    when reattaching to a file that survived a crash). *)

val crash_lose_volatile : unit -> unit
(** Power-cut model: truncate every tracked file with unsynced bytes back
    to its last durable length.  Call when simulating a machine (not just
    process) death, before recovering. *)
