type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let assign dst src = dst.state <- src.state

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int_below t n =
  assert (n > 0);
  (* Rejection sampling over the top 62 bits avoids modulo bias. *)
  let mask = max_int in
  let rec loop () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
    let v = r mod n in
    if r - v > mask - n + 1 then loop () else v
  in
  loop ()

let float_unit t =
  (* 53 random bits mapped to [0,1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r *. (1.0 /. 9007199254740992.0)

let float_range t lo hi = lo +. ((hi -. lo) *. float_unit t)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float_unit t < p

let gaussian t =
  let rec nonzero () =
    let u = float_unit t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float_unit t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let exponential t rate =
  assert (rate > 0.0);
  let rec nonzero () =
    let u = float_unit t in
    if u > 0.0 then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let choice t a =
  assert (Array.length a > 0);
  a.(int_below t (Array.length a))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  assert (0 <= k && k <= n);
  (* Floyd's algorithm keeps memory proportional to k. *)
  let seen = Hashtbl.create (2 * max 1 k) in
  let out = Array.make k 0 in
  let pos = ref 0 in
  for j = n - k to n - 1 do
    let r = int_below t (j + 1) in
    let v = if Hashtbl.mem seen r then j else r in
    Hashtbl.replace seen v ();
    out.(!pos) <- v;
    incr pos
  done;
  out
