(** Deterministic splittable pseudo-random number generator.

    All randomized components of the library (Gibbs sampling,
    Metropolis-Hastings, corpus generation, weight initialization) draw from
    this generator so that every experiment is reproducible from a seed.  The
    core is splitmix64, which has a 64-bit state, passes BigCrush, and is
    cheap to split into independent streams. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val assign : t -> t -> unit
(** [assign dst src] overwrites [dst]'s state with [src]'s.  Used to restore
    a generator to a previously {!copy}-ed state in place (transactional
    rollback), since consumers hold the generator by reference. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int_below : t -> int -> int
(** [int_below t n] is uniform on [0, n-1]. Requires [n > 0]. *)

val float_unit : t -> float
(** Uniform float in [0, 1). *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform on [lo, hi). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val gaussian : t -> float
(** Standard normal via Box-Muller. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate). Requires [rate > 0]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] returns [k] distinct indices drawn
    uniformly from [0, n-1]. Requires [0 <= k <= n]. *)
