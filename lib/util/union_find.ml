(* Disjoint-set forest with union by rank, path compression, and dynamic
   growth: the backing arrays double when [add] runs past capacity, so
   streaming consumers (entity canonicalization) can register elements as
   they first appear instead of sizing the structure up front. *)

type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable length : int;  (* elements in use; capacity is Array.length parent *)
}

let create n =
  let capacity = max n 1 in
  {
    parent = Array.init capacity (fun i -> i);
    rank = Array.make capacity 0;
    length = n;
  }

let length t = t.length

let check t x =
  if x < 0 || x >= t.length then
    invalid_arg (Printf.sprintf "Union_find: element %d outside [0, %d)" x t.length)

let add t =
  let x = t.length in
  if x = Array.length t.parent then begin
    let capacity = 2 * Array.length t.parent in
    let parent = Array.init capacity (fun i -> i) in
    Array.blit t.parent 0 parent 0 x;
    let rank = Array.make capacity 0 in
    Array.blit t.rank 0 rank 0 x;
    t.parent <- parent;
    t.rank <- rank
  end;
  t.parent.(x) <- x;
  t.rank.(x) <- 0;
  t.length <- x + 1;
  x

let rec find_unchecked t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find_unchecked t p in
    t.parent.(x) <- root;
    root
  end

let find t x =
  check t x;
  find_unchecked t x

let union t x y =
  check t x;
  check t y;
  let rx = find_unchecked t x and ry = find_unchecked t y in
  if rx <> ry then
    if t.rank.(rx) < t.rank.(ry) then t.parent.(rx) <- ry
    else if t.rank.(rx) > t.rank.(ry) then t.parent.(ry) <- rx
    else begin
      t.parent.(ry) <- rx;
      t.rank.(rx) <- t.rank.(rx) + 1
    end

let same t x y =
  check t x;
  check t y;
  find_unchecked t x = find_unchecked t y

let groups t =
  let table = Hashtbl.create 16 in
  for x = 0 to t.length - 1 do
    let r = find_unchecked t x in
    let members = try Hashtbl.find table r with Not_found -> [] in
    Hashtbl.replace table r (x :: members)
  done;
  table

let count t =
  let seen = Hashtbl.create 16 in
  for x = 0 to t.length - 1 do
    Hashtbl.replace seen (find_unchecked t x) ()
  done;
  Hashtbl.length seen
