(** Disjoint-set forest with union by rank and path compression.

    Used by the factor-graph decomposition heuristic (DESIGN.md, Appendix B.1
    of the paper) to compute connected components of inactive variables, and
    by the streaming entity canonicalizer ({!Dd_ingest.Canonicalizer}) to
    merge surface forms across documents — the latter registers elements as
    they first appear, so the structure grows dynamically via {!add}. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1].  More sets can
    be added later with {!add}. *)

val add : t -> int
(** Register one new singleton set and return its label (the next unused
    integer).  Amortized O(1): the backing arrays double on demand. *)

val length : t -> int
(** Number of registered elements; valid labels are [0 .. length - 1]. *)

val find : t -> int -> int
(** Representative of the set containing the element.  Raises
    [Invalid_argument] on an unregistered element. *)

val union : t -> int -> int -> unit
(** Merge the two sets. *)

val same : t -> int -> int -> bool
(** Whether two elements share a set. *)

val groups : t -> (int, int list) Hashtbl.t
(** Map from representative to the members of its set. *)

val count : t -> int
(** Number of distinct sets. *)
