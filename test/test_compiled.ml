(* Tests for the compiled flat (CSR) factor-graph kernel: bit-exactness
   against the legacy pointer-chasing sampler per (seed, graph), agreement
   with exact marginals, refresh_weights-vs-recompile equivalence, dense
   gradient agreement with the legacy feature counter, and the engine's
   kernel cache across incremental steps. *)

module Value = Dd_relational.Value
module Schema = Dd_relational.Schema
module Database = Dd_relational.Database
module Ast = Dd_datalog.Ast
module Dred = Dd_datalog.Dred
module Graph = Dd_fgraph.Graph
module Semantics = Dd_fgraph.Semantics
module Exact = Dd_fgraph.Exact
module Voting = Dd_fgraph.Voting
module Gibbs = Dd_inference.Gibbs
module Compiled = Dd_inference.Compiled
module Fast_gibbs = Dd_inference.Fast_gibbs
module Learner = Dd_inference.Learner
module Program = Dd_core.Program
module Grounding = Dd_core.Grounding
module Engine = Dd_core.Engine
module Prng = Dd_util.Prng
module Stats = Dd_util.Stats

(* Random mixed graphs: unary biases on every variable plus multi-body
   factors with random heads, negation, and semantics — the same shape as
   the Fast_gibbs equivalence tests, parameterized by seed. *)
let mixed_graph ?(learnable = false) seed =
  let rng = Prng.create seed in
  let g = Graph.create () in
  let n = 6 + Prng.int_below rng 5 in
  let vars = Graph.add_vars g n in
  Graph.set_evidence g vars.(n - 1) (Graph.Evidence (Prng.bool rng));
  Array.iter
    (fun v ->
      let l = learnable && Prng.bool rng in
      let w = Graph.add_weight ~learnable:l g (Prng.float_range rng (-1.0) 1.0) in
      ignore (Graph.unary g ~weight:w v))
    vars;
  for _ = 1 to 4 + Prng.int_below rng 5 do
    let a = Prng.int_below rng n and b = Prng.int_below rng n in
    if a <> b then begin
      let l = learnable && Prng.bool rng in
      let w = Graph.add_weight ~learnable:l g (Prng.float_range rng (-1.0) 1.0) in
      let semantics = Prng.choice rng [| Semantics.Linear; Semantics.Logical; Semantics.Ratio |] in
      let head = if Prng.bool rng then Some (Prng.int_below rng n) else None in
      let negated = Prng.bool rng in
      ignore
        (Graph.add_factor g
           {
             Graph.head;
             bodies =
               [|
                 [| { Graph.var = a; negated } |];
                 [| { Graph.var = a; negated = false }; { Graph.var = b; negated = true } |];
               |];
             weight_id = w;
             semantics;
           })
    end
  done;
  g

(* --- bit-exactness vs the legacy sampler --------------------------------------- *)

let trajectories_identical seed =
  let g = mixed_graph seed in
  let init = Gibbs.init_assignment (Prng.create (1000 + seed)) g in
  let compiled = Fast_gibbs.create ~init (Prng.create 1) g in
  let legacy = Fast_gibbs.create_legacy ~init:(Array.copy init) (Prng.create 1) g in
  let rng_c = Prng.create (2000 + seed) and rng_l = Prng.create (2000 + seed) in
  let ok = ref true in
  for _ = 1 to 30 do
    Fast_gibbs.sweep rng_c compiled;
    Fast_gibbs.sweep rng_l legacy;
    if Fast_gibbs.assignment compiled <> Fast_gibbs.assignment legacy then ok := false
  done;
  (* Conditionals must also be bit-identical floats, not merely close. *)
  for v = 0 to Graph.num_vars g - 1 do
    if Fast_gibbs.conditional_true_prob compiled v
       <> Fast_gibbs.conditional_true_prob legacy v
    then ok := false
  done;
  !ok

let test_bit_exact_vs_legacy () =
  for seed = 0 to 24 do
    if not (trajectories_identical seed) then
      Alcotest.failf "seed %d: compiled and legacy samplers diverged" seed
  done

let test_same_rng_consumption () =
  (* Both samplers must draw the same count from their stream: after the
     same number of sweeps, identical clones of a third RNG stay in step. *)
  let g = mixed_graph 5 in
  let init = Gibbs.init_assignment (Prng.create 3) g in
  let rng_c = Prng.create 77 and rng_l = Prng.create 77 in
  let compiled = Fast_gibbs.create ~init rng_c g in
  let legacy = Fast_gibbs.create_legacy ~init:(Array.copy init) rng_l g in
  for _ = 1 to 10 do
    Fast_gibbs.sweep rng_c compiled;
    Fast_gibbs.sweep rng_l legacy
  done;
  Alcotest.(check bool) "streams in step" true (Prng.bool rng_c = Prng.bool rng_l)

(* --- agreement with exact marginals -------------------------------------------- *)

let test_marginals_match_exact_mixed () =
  let g = mixed_graph 3 in
  let kernel = Compiled.compile g in
  let m = Compiled.marginals ~burn_in:100 (Prng.create 10) kernel ~sweeps:20_000 in
  let exact = Exact.marginals g in
  Alcotest.(check bool) "within 3%" true (Stats.max_abs_diff m exact < 0.03)

let test_marginals_match_exact_voting () =
  (* The Example 2.5 voting graph: the compiled sampler's estimate of
     P(q) must match the closed-form counting answer. *)
  let cfg =
    {
      Voting.n_up = 6;
      n_down = 4;
      rule_weight = 0.8;
      unary_up = 0.2;
      unary_down = -0.1;
      semantics = Semantics.Logical;
    }
  in
  let g, q, _, _ = Voting.build cfg in
  let kernel = Compiled.compile g in
  let m = Compiled.marginals ~burn_in:200 (Prng.create 11) kernel ~sweeps:30_000 in
  let exact = Voting.exact_marginal_q cfg in
  Alcotest.(check (float 0.03)) "P(q)" exact m.(q)

(* --- refresh_weights vs full recompile ----------------------------------------- *)

let test_refresh_weights_equiv_recompile () =
  let g = mixed_graph 7 in
  let kernel = Compiled.compile g in
  (* Move every weight after compilation, as learning would. *)
  let rng = Prng.create 21 in
  for w = 0 to Graph.num_weights g - 1 do
    Graph.set_weight g w (Prng.float_range rng (-1.5) 1.5)
  done;
  Compiled.refresh_weights kernel;
  let fresh = Compiled.compile g in
  let init = Gibbs.init_assignment (Prng.create 4) g in
  let st_refreshed = Compiled.make_state ~init (Prng.create 5) kernel in
  let st_fresh = Compiled.make_state ~init:(Array.copy init) (Prng.create 5) fresh in
  for v = 0 to Graph.num_vars g - 1 do
    let a = Compiled.conditional_true_prob st_refreshed v in
    let b = Compiled.conditional_true_prob st_fresh v in
    if a <> b then Alcotest.failf "var %d: refreshed %.17g fresh %.17g" v a b
  done;
  let rng_a = Prng.create 6 and rng_b = Prng.create 6 in
  for _ = 1 to 20 do
    Compiled.sweep rng_a st_refreshed;
    Compiled.sweep rng_b st_fresh
  done;
  Alcotest.(check bool) "same trajectory" true
    (Compiled.snapshot st_refreshed = Compiled.snapshot st_fresh)

let test_matches_structure () =
  let g = mixed_graph 2 in
  let kernel = Compiled.compile g in
  Alcotest.(check bool) "fresh" true (Compiled.matches_structure kernel g);
  Graph.set_weight g 0 5.0;
  Alcotest.(check bool) "weight change ok" true (Compiled.matches_structure kernel g);
  let v = Graph.add_var g in
  Alcotest.(check bool) "new var detected" false (Compiled.matches_structure kernel g);
  let kernel2 = Compiled.compile g in
  let w = Graph.add_weight g 1.0 in
  ignore (Graph.unary g ~weight:w v);
  Alcotest.(check bool) "new factor detected" false (Compiled.matches_structure kernel2 g)

let test_compile_rejects_duplicate_literal () =
  let g = Graph.create () in
  let v = Graph.add_var g in
  let w = Graph.add_weight g 1.0 in
  ignore
    (Graph.add_factor g
       {
         Graph.head = None;
         bodies = [| [| { Graph.var = v; negated = false }; { Graph.var = v; negated = true } |] |];
         weight_id = w;
         semantics = Semantics.Linear;
       });
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Compiled.compile: variable repeated within a body")
    (fun () -> ignore (Compiled.compile g))

(* --- dense gradients vs the legacy feature counter ----------------------------- *)

let test_add_feature_counts_matches_legacy () =
  for seed = 0 to 9 do
    let g = mixed_graph ~learnable:true seed in
    let nw = Graph.num_weights g in
    let kernel = Compiled.compile g in
    let init = Gibbs.init_assignment (Prng.create (300 + seed)) g in
    let st = Compiled.make_state ~init (Prng.create 1) kernel in
    let dense = Array.make nw 0.0 in
    Compiled.add_feature_counts st ~scale:1.0 dense;
    let reference = Learner.feature_counts g init in
    List.iter
      (fun (w, expected) ->
        if abs_float (dense.(w) -. expected) > 1e-9 then
          Alcotest.failf "seed %d weight %d: dense %.12f legacy %.12f" seed w dense.(w) expected)
      reference;
    (* Slots absent from the legacy list must be zero in the dense array. *)
    Array.iteri
      (fun w v ->
        if (not (List.mem_assoc w reference)) && v <> 0.0 then
          Alcotest.failf "seed %d weight %d: spurious gradient %.12f" seed w v)
      dense
  done

(* --- engine kernel cache -------------------------------------------------------- *)

let s = Value.str
let v name = Ast.Var name
let atom = Ast.atom

let item_schema = Schema.make [ ("item", Value.TStr); ("feature", Value.TStr) ]
let label_schema = Schema.make [ ("item", Value.TStr); ("lbl", Value.TBool) ]
let query_schema = Schema.make [ ("item", Value.TStr) ]

let classifier_rule =
  Program.Infer
    {
      Program.name = "classify";
      head = atom "is_pos" [ v "x" ];
      body = [ Ast.Pos (atom "item_feature" [ v "x"; v "f" ]) ];
      guards = [];
      weight = Program.Tied [ v "f" ];
      semantics = Semantics.Linear;
      populate_head = true;
    }

let supervision_rule =
  Program.Supervise
    ( "labels",
      Ast.rule
        (atom "is_pos_ev" [ v "x"; v "l" ])
        [ Ast.Pos (atom "label_src" [ v "x"; v "l" ]) ] )

let engine_fixture () =
  let db = Database.create () in
  ignore (Database.create_table db "item_feature" item_schema);
  ignore (Database.create_table db "label_src" label_schema);
  List.iter
    (fun (item, feature) -> Database.insert_rows db "item_feature" [ [| s item; s feature |] ])
    [ ("a", "f1"); ("b", "f1"); ("c", "f2"); ("d", "f2") ];
  Database.insert_rows db "label_src" [ [| s "a"; Value.Bool true |] ];
  let prog =
    {
      Program.input_schemas = [ ("item_feature", item_schema); ("label_src", label_schema) ];
      query_relations = [ ("is_pos", query_schema) ];
      rules = [ classifier_rule; supervision_rule ];
    }
  in
  (db, prog)

let full_gibbs_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 20;
    inference_chain = 30;
    burn_in = 5;
    initial_learning_epochs = 5;
    incremental_learning_epochs = 1;
    (* Force the full-Gibbs fallback so every update exercises the
       compiled-kernel path. *)
    disable_sampling = true;
    with_variational = false;
  }

let test_engine_reuses_kernel () =
  let db, prog = engine_fixture () in
  let engine = Engine.create ~options:full_gibbs_options db prog in
  Alcotest.(check int) "no compile yet" 0 (Engine.kernel_compiles engine);
  let r1 = Engine.apply_update engine (Grounding.rules_update []) in
  Alcotest.(check string) "full gibbs" "full-gibbs" (Engine.strategy_used_to_string r1.Engine.strategy);
  Alcotest.(check int) "first compile" 1 (Engine.kernel_compiles engine);
  (* Weight-only steps (no structural or evidence change) reuse the kernel. *)
  ignore (Engine.apply_update engine (Grounding.rules_update []));
  ignore (Engine.apply_update engine (Grounding.rules_update []));
  Alcotest.(check int) "cache reused" 1 (Engine.kernel_compiles engine);
  (* A data update that grows the graph must recompile. *)
  let delta = Dred.Delta.create () in
  Dred.Delta.insert delta "item_feature" [| s "e"; s "f1" |];
  let r2 = Engine.apply_update engine (Grounding.data_update delta) in
  Alcotest.(check bool) "graph grew" true (r2.Engine.grounding.Grounding.new_vars > 0);
  Alcotest.(check int) "recompiled" 2 (Engine.kernel_compiles engine);
  ignore (Engine.apply_update engine (Grounding.rules_update []));
  Alcotest.(check int) "reused again" 2 (Engine.kernel_compiles engine)

(* --- qcheck -------------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"compiled sampler bit-exact with legacy per seed" ~count:50 small_int
      trajectories_identical;
    Test.make ~name:"compiled conditionals match plain Gibbs" ~count:50 small_int (fun seed ->
        let g = mixed_graph seed in
        let a = Gibbs.init_assignment (Prng.create (500 + seed)) g in
        let st = Compiled.make_state ~init:a (Prng.create 1) (Compiled.compile g) in
        let ok = ref true in
        for v = 0 to Graph.num_vars g - 1 do
          if abs_float (Gibbs.conditional_true_prob g a v -. Compiled.conditional_true_prob st v)
             > 1e-9
          then ok := false
        done;
        !ok);
  ]

let () =
  Alcotest.run "dd_compiled"
    [
      ( "bit-exact",
        [
          Alcotest.test_case "trajectories vs legacy" `Quick test_bit_exact_vs_legacy;
          Alcotest.test_case "rng consumption" `Quick test_same_rng_consumption;
        ] );
      ( "exact",
        [
          Alcotest.test_case "mixed graph" `Slow test_marginals_match_exact_mixed;
          Alcotest.test_case "voting graph" `Slow test_marginals_match_exact_voting;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "refresh_weights = recompile" `Quick test_refresh_weights_equiv_recompile;
          Alcotest.test_case "matches_structure" `Quick test_matches_structure;
          Alcotest.test_case "duplicate literal" `Quick test_compile_rejects_duplicate_literal;
          Alcotest.test_case "dense gradients" `Quick test_add_feature_counts_matches_legacy;
        ] );
      ("engine", [ Alcotest.test_case "kernel cache" `Quick test_engine_reuses_kernel ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
