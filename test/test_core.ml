(* Tests for Dd_core: program validation, grounding (full and incremental,
   with golden equivalence against regrounding from scratch), the three
   materialization strategies, the rule-based optimizer, decomposition and
   the end-to-end engine. *)

module Value = Dd_relational.Value
module Schema = Dd_relational.Schema
module Database = Dd_relational.Database
module Ast = Dd_datalog.Ast
module Dred = Dd_datalog.Dred
module Graph = Dd_fgraph.Graph
module Semantics = Dd_fgraph.Semantics
module Exact = Dd_fgraph.Exact
module Metropolis = Dd_inference.Metropolis
module Program = Dd_core.Program
module Grounding = Dd_core.Grounding
module Materialize = Dd_core.Materialize
module Optimizer = Dd_core.Optimizer
module Decompose = Dd_core.Decompose
module Engine = Dd_core.Engine
module Prng = Dd_util.Prng
module Stats = Dd_util.Stats

let s = Value.str
let v name = Ast.Var name
let atom = Ast.atom

(* A miniature KBC program: items have features; a classifier labels items;
   a link relation correlates item pairs.

   input item_feature(item, feature)
   input link(a, b)
   input label_src(item, lbl)
   query is_pos(item)
*)
let item_schema = Schema.make [ ("item", Value.TStr); ("feature", Value.TStr) ]
let link_schema = Schema.make [ ("a", Value.TStr); ("b", Value.TStr) ]
let label_schema = Schema.make [ ("item", Value.TStr); ("lbl", Value.TBool) ]
let query_schema = Schema.make [ ("item", Value.TStr) ]

let classifier_rule semantics =
  Program.Infer
    {
      Program.name = "classify";
      head = atom "is_pos" [ v "x" ];
      body = [ Ast.Pos (atom "item_feature" [ v "x"; v "f" ]) ];
      guards = [];
      weight = Program.Tied [ v "f" ];
      semantics;
      populate_head = true;
    }

let link_rule =
  Program.Infer
    {
      Program.name = "linked";
      head = atom "is_pos" [ v "x" ];
      body =
        [ Ast.Pos (atom "is_pos" [ v "y" ]); Ast.Pos (atom "link" [ v "x"; v "y" ]) ];
      guards = [];
      weight = Program.Fixed 0.8;
      semantics = Semantics.Logical;
      populate_head = false;
    }

let supervision_rule =
  Program.Supervise
    ( "labels",
      Ast.rule
        (atom "is_pos_ev" [ v "x"; v "l" ])
        [ Ast.Pos (atom "label_src" [ v "x"; v "l" ]) ] )

let base_program ?(semantics = Semantics.Linear) () =
  {
    Program.input_schemas =
      [ ("item_feature", item_schema); ("link", link_schema); ("label_src", label_schema) ];
    query_relations = [ ("is_pos", query_schema) ];
    rules = [ classifier_rule semantics ];
  }

let load_features db rows =
  List.iter
    (fun (item, feature) ->
      Database.insert_rows db "item_feature" [ [| s item; s feature |] ])
    rows

let fresh_db () =
  let db = Database.create () in
  ignore (Database.create_table db "item_feature" item_schema);
  ignore (Database.create_table db "link" link_schema);
  ignore (Database.create_table db "label_src" label_schema);
  db

(* --- program validation --------------------------------------------------- *)

let test_program_validate_ok () =
  Alcotest.(check bool) "valid" true (Result.is_ok (Program.validate (base_program ())))

let test_program_rejects_non_query_head () =
  let bad =
    {
      (base_program ()) with
      Program.rules =
        [
          Program.Infer
            {
              Program.name = "bad";
              head = atom "not_query" [ v "x" ];
              body = [ Ast.Pos (atom "item_feature" [ v "x"; v "f" ]) ];
              guards = [];
              weight = Program.Fixed 1.0;
              semantics = Semantics.Linear;
              populate_head = true;
            };
        ];
    }
  in
  Alcotest.(check bool) "rejected" true (Result.is_error (Program.validate bad))

let test_program_rejects_unbound_weight_var () =
  let bad =
    {
      (base_program ()) with
      Program.rules =
        [
          Program.Infer
            {
              Program.name = "bad";
              head = atom "is_pos" [ v "x" ];
              body = [ Ast.Pos (atom "item_feature" [ v "x"; v "f" ]) ];
              guards = [];
              weight = Program.Tied [ v "unbound" ];
              semantics = Semantics.Linear;
              populate_head = true;
            };
        ];
    }
  in
  Alcotest.(check bool) "rejected" true (Result.is_error (Program.validate bad))

let test_program_rejects_bad_supervision_target () =
  let bad =
    {
      (base_program ()) with
      Program.rules =
        [
          Program.Supervise
            ("bad", Ast.rule (atom "foo_ev" [ v "x" ]) [ Ast.Pos (atom "link" [ v "x"; v "y" ]) ]);
        ];
    }
  in
  Alcotest.(check bool) "rejected" true (Result.is_error (Program.validate bad))

let test_evidence_naming () =
  Alcotest.(check string) "suffix" "is_pos_ev" (Program.evidence_relation "is_pos");
  let ev = Program.evidence_schema query_schema in
  Alcotest.(check (list string)) "label col" [ "item"; "label" ] (Schema.names ev)

let test_deterministic_program_respects_populate () =
  let with_link = Program.add_rules (base_program ()) [ link_rule ] in
  let datalog = Program.deterministic_program with_link in
  (* classify populates, linked does not: exactly one candidate rule. *)
  Alcotest.(check int) "one datalog rule" 1 (List.length datalog)

(* --- full grounding -------------------------------------------------------- *)

let test_ground_variables_and_factors () =
  let db = fresh_db () in
  load_features db [ ("a", "f1"); ("a", "f2"); ("b", "f1") ];
  let grounding = Grounding.ground db (base_program ()) in
  let stats = Grounding.stats grounding in
  Alcotest.(check int) "two candidates" 2 stats.Grounding.variables;
  (* Factor groups: (item, feature-weight): a#f1, a#f2, b#f1. *)
  Alcotest.(check int) "three factors" 3 stats.Grounding.factors;
  (* Tied weights: f1 shared across a and b, f2 separate. *)
  Alcotest.(check int) "two weights" 2 stats.Grounding.weights;
  Alcotest.(check bool) "var exists" true (Grounding.var_of grounding "is_pos" [| s "a" |] <> None)

let test_ground_weight_tying () =
  let db = fresh_db () in
  load_features db [ ("a", "f1"); ("b", "f1"); ("c", "f1") ];
  let grounding = Grounding.ground db (base_program ()) in
  let g = Grounding.graph grounding in
  Alcotest.(check int) "one tied weight" 1 (Graph.num_weights g);
  Alcotest.(check bool) "learnable" true (Graph.weight_learnable g 0)

let test_ground_fixed_weight () =
  let db = fresh_db () in
  load_features db [ ("a", "f1") ];
  Database.insert_rows db "link" [ [| s "a"; s "a" |] ];
  let prog = Program.add_rules (base_program ()) [ link_rule ] in
  let grounding = Grounding.ground db prog in
  let g = Grounding.graph grounding in
  (* One learnable feature weight + one fixed rule weight. *)
  let fixed =
    List.init (Graph.num_weights g) (fun w -> w)
    |> List.filter (fun w -> not (Graph.weight_learnable g w))
  in
  Alcotest.(check int) "one fixed" 1 (List.length fixed);
  Alcotest.(check (float 0.0)) "value" 0.8 (Graph.weight_value g (List.hd fixed))

let test_ground_evidence_majority () =
  let db = fresh_db () in
  load_features db [ ("a", "f1"); ("b", "f1"); ("c", "f1") ];
  (* a: one true vote; b: conflicting votes -> stays query; c: false. *)
  Database.insert_rows db "label_src"
    [
      [| s "a"; Value.Bool true |];
      [| s "b"; Value.Bool true |];
      [| s "b"; Value.Bool false |];
      [| s "c"; Value.Bool false |];
    ];
  let prog = Program.add_rules (base_program ()) [ supervision_rule ] in
  let grounding = Grounding.ground db prog in
  let g = Grounding.graph grounding in
  let evidence_of item =
    match Grounding.var_of grounding "is_pos" [| s item |] with
    | Some var -> Graph.evidence_of g var
    | None -> Alcotest.fail ("no var for " ^ item)
  in
  Alcotest.(check bool) "a true" true (evidence_of "a" = Graph.Evidence true);
  Alcotest.(check bool) "b conflicted -> query" true (evidence_of "b" = Graph.Query);
  Alcotest.(check bool) "c false" true (evidence_of "c" = Graph.Evidence false)

let test_ground_body_query_literals () =
  let db = fresh_db () in
  load_features db [ ("a", "f1"); ("b", "f2") ];
  Database.insert_rows db "link" [ [| s "a"; s "b" |] ];
  let prog = Program.add_rules (base_program ()) [ link_rule ] in
  let grounding = Grounding.ground db prog in
  let g = Grounding.graph grounding in
  (* The link factor connects both query variables. *)
  let linked =
    List.exists
      (fun fid ->
        let f = Graph.factor g fid in
        List.length (Graph.vars_of_factor f) = 2)
      (List.init (Graph.num_factors g) (fun x -> x))
  in
  Alcotest.(check bool) "pair factor exists" true linked

let test_ground_counts_in_factor_bodies () =
  (* Item with the same feature twice through different rows is impossible
     (set semantics), but two different deterministic supports of the same
     query body must both appear as bodies: n(gamma, I) counts groundings. *)
  let db = fresh_db () in
  load_features db [ ("a", "f1") ];
  (* Second inference rule whose body has a non-query atom with two
     matches for the same head/weight: use link with two rows. *)
  Database.insert_rows db "link" [ [| s "a"; s "x" |]; [| s "a"; s "y" |] ];
  let two_support =
    Program.Infer
      {
        Program.name = "sup";
        head = atom "is_pos" [ v "a" ];
        body =
          [ Ast.Pos (atom "item_feature" [ v "a"; v "f" ]); Ast.Pos (atom "link" [ v "a"; v "z" ]) ];
        guards = [];
        weight = Program.Fixed 0.5;
        semantics = Semantics.Linear;
        populate_head = true;
      }
  in
  let prog = Program.add_rules (base_program ()) [ two_support ] in
  let grounding = Grounding.ground db prog in
  let g = Grounding.graph grounding in
  let max_bodies =
    List.fold_left
      (fun acc fid -> max acc (Array.length (Graph.factor g fid).Graph.bodies))
      0
      (List.init (Graph.num_factors g) (fun x -> x))
  in
  Alcotest.(check int) "two groundings in one factor" 2 max_bodies

(* --- incremental grounding: golden equivalence ------------------------------- *)

(* Compare graphs by their exact distributions: same variables (by origin)
   and same probability for every world. *)
let distributions_agree g1 grounding1 g2 grounding2 =
  let n1 = Graph.num_vars g1 and n2 = Graph.num_vars g2 in
  if n1 <> n2 then false
  else begin
    (* Map g2's vars to g1's through origins. *)
    let mapping = Array.make n2 (-1) in
    let ok = ref true in
    for var2 = 0 to n2 - 1 do
      let rel, tuple = Grounding.origin grounding2 var2 in
      match Grounding.var_of grounding1 rel tuple with
      | Some var1 -> mapping.(var2) <- var1
      | None -> ok := false
    done;
    !ok
    && begin
      let worlds = Exact.enumerate g2 in
      List.for_all
        (fun (world2, p2) ->
          let world1 = Array.make n1 false in
          Array.iteri (fun var2 value -> world1.(mapping.(var2)) <- value) world2;
          let p1 = Exact.world_probability g1 world1 in
          abs_float (p1 -. p2) < 1e-9)
        worlds
    end
  end

let test_extend_data_matches_scratch () =
  (* Ground on a small db, extend with more rows, compare the distribution
     against grounding the final db from scratch. *)
  let db = fresh_db () in
  load_features db [ ("a", "f1") ];
  let prog = base_program () in
  let grounding = Grounding.ground db prog in
  (* Give the learnable weight a value so distributions are non-trivial;
     re-grounding from scratch recreates the same weight keys, so copy
     values over by key. *)
  Graph.set_weight (Grounding.graph grounding) 0 0.9;
  let delta = Dred.Delta.create () in
  Dred.Delta.insert delta "item_feature" [| s "b"; s "f1" |];
  Dred.Delta.insert delta "item_feature" [| s "a"; s "f2" |];
  let report = Grounding.extend grounding (Grounding.data_update delta) in
  Alcotest.(check bool) "no rebuild" false report.Grounding.needs_rebuild;
  Alcotest.(check int) "one new var" 1 report.Grounding.new_vars;
  (* Scratch grounding over the same final data. *)
  let db2 = fresh_db () in
  load_features db2 [ ("a", "f1"); ("b", "f1"); ("a", "f2") ];
  let scratch = Grounding.ground db2 prog in
  (* Sync weights by key. *)
  let g1 = Grounding.graph grounding and g2 = Grounding.graph scratch in
  for w2 = 0 to Graph.num_weights g2 - 1 do
    let key = Grounding.weight_key_of scratch w2 in
    for w1 = 0 to Graph.num_weights g1 - 1 do
      if Grounding.weight_key_of grounding w1 = key then
        Graph.set_weight g2 w2 (Graph.weight_value g1 w1)
    done
  done;
  Alcotest.(check bool) "distributions equal" true
    (distributions_agree g1 grounding g2 scratch)

let test_extend_new_rule_matches_scratch () =
  let db = fresh_db () in
  load_features db [ ("a", "f1"); ("b", "f2") ];
  Database.insert_rows db "link" [ [| s "a"; s "b" |] ];
  let prog = base_program () in
  let grounding = Grounding.ground db prog in
  let report = Grounding.extend grounding (Grounding.rules_update [ link_rule ]) in
  Alcotest.(check bool) "new factors" true (report.Grounding.new_factors > 0);
  let db2 = fresh_db () in
  load_features db2 [ ("a", "f1"); ("b", "f2") ];
  Database.insert_rows db2 "link" [ [| s "a"; s "b" |] ];
  let scratch = Grounding.ground db2 (Program.add_rules prog [ link_rule ]) in
  Alcotest.(check bool) "distributions equal" true
    (distributions_agree (Grounding.graph grounding) grounding (Grounding.graph scratch) scratch)

let test_extend_supervision_updates_evidence () =
  let db = fresh_db () in
  load_features db [ ("a", "f1") ];
  Database.insert_rows db "label_src" [ [| s "a"; Value.Bool true |] ];
  let grounding = Grounding.ground db (base_program ()) in
  let report = Grounding.extend grounding (Grounding.rules_update [ supervision_rule ]) in
  Alcotest.(check int) "one evidence change" 1 report.Grounding.evidence_changed;
  let var = Option.get (Grounding.var_of grounding "is_pos" [| s "a" |]) in
  Alcotest.(check bool) "now evidence true" true
    (Graph.evidence_of (Grounding.graph grounding) var = Graph.Evidence true)

let test_extend_deletion_clamps () =
  let db = fresh_db () in
  load_features db [ ("a", "f1"); ("b", "f1") ];
  let grounding = Grounding.ground db (base_program ()) in
  let delta = Dred.Delta.create () in
  Dred.Delta.delete delta "item_feature" [| s "b"; s "f1" |];
  let report = Grounding.extend grounding (Grounding.data_update delta) in
  let var = Option.get (Grounding.var_of grounding "is_pos" [| s "b" |]) in
  Alcotest.(check bool) "clamped false" true
    (Graph.evidence_of (Grounding.graph grounding) var = Graph.Evidence false);
  Alcotest.(check bool) "evidence change recorded" true (report.Grounding.evidence_changed >= 1)

let test_extend_factor_extension_path () =
  (* Adding a second link for the same pair grows the existing factor
     group's bodies rather than creating a new factor. *)
  let db = fresh_db () in
  load_features db [ ("a", "f1"); ("b", "f1") ];
  Database.insert_rows db "link" [ [| s "a"; s "b" |] ];
  let prog = Program.add_rules (base_program ()) [ link_rule ] in
  let grounding = Grounding.ground db prog in
  let factors_before = (Grounding.stats grounding).Grounding.factors in
  (* a second deterministic support for the same (head, weight) group:
     another link row with the same endpoints cannot exist (set semantics),
     so instead extend by adding a feature that matches the classifier
     group of item a: different rule -> new factor.  Use a genuinely
     group-sharing update: new feature row for b with feature f1 joins the
     existing classify#b#f1 group?  It is the same tuple, no-op.  Instead
     verify extension through the link rule: link is in the body of
     "linked" with weight fixed (one group per head), so a new link b->a
     creates a new body for head b... which is a NEW group (head b).
     Extension is exercised in the KBC suite; here we check stability. *)
  let delta = Dred.Delta.create () in
  Dred.Delta.insert delta "link" [| s "b"; s "a" |] ;
  let report = Grounding.extend grounding (Grounding.data_update delta) in
  Alcotest.(check int) "factors grew" (factors_before + 1)
    ((Grounding.stats grounding).Grounding.factors);
  Alcotest.(check bool) "reported" true (report.Grounding.new_factors = 1)

let test_extend_rejects_invalid_rules () =
  let db = fresh_db () in
  load_features db [ ("a", "f1") ];
  let grounding = Grounding.ground db (base_program ()) in
  let bad =
    Program.Infer
      {
        Program.name = "bad";
        head = atom "nope" [ v "x" ];
        body = [ Ast.Pos (atom "item_feature" [ v "x"; v "f" ]) ];
        guards = [];
        weight = Program.Fixed 1.0;
        semantics = Semantics.Linear;
        populate_head = true;
      }
  in
  Alcotest.(check bool) "raises typed malformed-delta error" true
    (match Grounding.extend grounding (Grounding.rules_update [ bad ]) with
    | _ -> false
    | exception Grounding.Error (`Malformed_delta _) -> true)

(* --- materialization ---------------------------------------------------------- *)

let biased_graph () =
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var g in
  let wa = Graph.add_weight g 0.6 and wc = Graph.add_weight g 0.9 in
  ignore (Graph.unary g ~weight:wa a);
  ignore (Graph.pairwise g ~weight:wc a b);
  g

let test_strawman_exact_after_change () =
  let g = biased_graph () in
  let strawman = Materialize.strawman g in
  (* Change: weight 0 -> shift the unary weight. *)
  Graph.set_weight g 0 1.4;
  let change = { (Metropolis.unchanged g) with Metropolis.changed_weights = [ (0, 0.6) ] } in
  let updated = Materialize.strawman_marginals strawman change in
  let exact = Exact.marginals g in
  Alcotest.(check bool) "exact reweighting" true (Stats.max_abs_diff updated exact < 1e-9)

let test_strawman_rejects_new_vars () =
  let g = biased_graph () in
  let strawman = Materialize.strawman g in
  let fresh = Graph.add_var g in
  let change = { (Metropolis.unchanged g) with Metropolis.new_vars = [ fresh ] } in
  Alcotest.(check bool) "raises" true
    (match Materialize.strawman_marginals strawman change with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_materialize_contents () =
  let g = biased_graph () in
  let m = Materialize.materialize ~n_samples:50 (Prng.create 1) g in
  Alcotest.(check int) "samples" 50 (Array.length m.Materialize.samples);
  Alcotest.(check bool) "variational built" true (m.Materialize.variational <> None);
  Alcotest.(check int) "baseline factors" (Graph.num_factors g) m.Materialize.base_factor_count;
  Alcotest.(check int) "baseline vars" (Graph.num_vars g) m.Materialize.base_var_count

let test_materialize_var_limit () =
  let g = biased_graph () in
  let m = Materialize.materialize ~n_samples:10 ~variational_var_limit:1 (Prng.create 2) g in
  Alcotest.(check bool) "skipped above limit" true (m.Materialize.variational = None)

let test_materialize_budget () =
  let g = biased_graph () in
  let m = Materialize.materialize_within_budget (Prng.create 3) g ~seconds:0.05 in
  Alcotest.(check bool) "some samples" true (Array.length m.Materialize.samples > 10)

let test_cumulative_change () =
  let g = biased_graph () in
  let m = Materialize.materialize ~n_samples:20 (Prng.create 4) g in
  (* Mutate: new var, new factor, weight change, evidence change. *)
  let fresh = Graph.add_var g in
  Graph.set_weight g 0 2.0;
  let w = Graph.add_weight g 0.1 in
  let fid = Graph.unary g ~weight:w fresh in
  Graph.set_evidence g 0 (Graph.Evidence true);
  let extension_origin = Hashtbl.create 4 in
  let change = Materialize.cumulative_change m g ~extension_origin in
  Alcotest.(check (list int)) "new vars" [ fresh ] change.Metropolis.new_vars;
  Alcotest.(check (list int)) "new factors" [ fid ] change.Metropolis.new_factor_ids;
  Alcotest.(check bool) "weight change recorded" true
    (List.mem (0, 0.6) change.Metropolis.changed_weights);
  Alcotest.(check int) "evidence change" 1 (List.length change.Metropolis.evidence_changes)

let test_variational_infer_absorbs_update () =
  let g = biased_graph () in
  let rng = Prng.create 5 in
  let m = Materialize.materialize ~n_samples:800 ~lambda:0.01 rng g in
  (* Add a strongly biased new variable. *)
  let fresh = Graph.add_var g in
  let w = Graph.add_weight g 2.5 in
  let fid = Graph.unary g ~weight:w fresh in
  let change =
    {
      (Metropolis.unchanged g) with
      Metropolis.new_vars = [ fresh ];
      new_factor_ids = [ fid ];
    }
  in
  let approx = Option.get m.Materialize.variational in
  let marginals =
    Materialize.variational_infer ~sweeps:2000 (Prng.create 6) ~approx ~change
  in
  Alcotest.(check bool) "new var biased up" true (marginals.(fresh) > 0.85)

let test_materialize_save_load () =
  let g = biased_graph () in
  let m = Materialize.materialize ~n_samples:30 (Prng.create 19) g in
  let path = Filename.temp_file "ddmat_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Materialize.save path m;
      let back = Materialize.load path in
      Alcotest.(check int) "samples" 30 (Array.length back.Materialize.samples);
      Alcotest.(check bool) "sample contents" true (m.Materialize.samples = back.Materialize.samples);
      Alcotest.(check bool) "weights" true (m.Materialize.base_weights = back.Materialize.base_weights);
      Alcotest.(check int) "factor count" m.Materialize.base_factor_count back.Materialize.base_factor_count;
      Alcotest.(check bool) "evidence" true (m.Materialize.base_evidence = back.Materialize.base_evidence);
      Alcotest.(check bool) "variational kept" true (back.Materialize.variational <> None);
      (* The reloaded artifact must answer updates like the original. *)
      Graph.set_weight g 0 2.0;
      let change = Materialize.cumulative_change back g ~extension_origin:(Hashtbl.create 1) in
      let result =
        Dd_inference.Metropolis.infer (Prng.create 20) change
          ~stored:back.Materialize.samples ~chain_length:30
      in
      Alcotest.(check bool) "usable" true (Array.length result.Dd_inference.Metropolis.marginals > 0))

let test_materialize_load_rejects_garbage () =
  let path = Filename.temp_file "ddmat_bad" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let out = open_out path in
      output_string out "not a materialization\n";
      close_out out;
      Alcotest.(check bool) "rejected" true
        (match Materialize.load path with
        | _ -> false
        | exception Dd_fgraph.Serialize.Format_error _ -> true))

(* --- optimizer ----------------------------------------------------------------- *)

let test_optimizer_rules () =
  let base = { Optimizer.changes_structure = false; modifies_evidence = false; introduces_features = false } in
  (* Rule 1: no structure change -> sampling. *)
  Alcotest.(check bool) "analysis -> sampling" true
    (Optimizer.choose base ~samples_exhausted:false = Optimizer.Sampling);
  (* Rule 2: evidence change -> variational. *)
  Alcotest.(check bool) "supervision -> variational" true
    (Optimizer.choose { base with Optimizer.modifies_evidence = true } ~samples_exhausted:false
    = Optimizer.Variational);
  (* Rule 3: new features -> sampling. *)
  Alcotest.(check bool) "features -> sampling" true
    (Optimizer.choose
       { base with Optimizer.changes_structure = true; introduces_features = true }
       ~samples_exhausted:false
    = Optimizer.Sampling);
  (* Rule 4: exhausted -> variational regardless. *)
  Alcotest.(check bool) "exhausted -> variational" true
    (Optimizer.choose base ~samples_exhausted:true = Optimizer.Variational)

let test_optimizer_profile () =
  let g = biased_graph () in
  let unchanged = Optimizer.profile_of_change (Metropolis.unchanged g) in
  Alcotest.(check bool) "nothing" true
    ((not unchanged.Optimizer.changes_structure)
    && (not unchanged.Optimizer.modifies_evidence)
    && not unchanged.Optimizer.introduces_features);
  let with_evidence =
    { (Metropolis.unchanged g) with Metropolis.evidence_changes = [ (0, Graph.Query) ] }
  in
  Alcotest.(check bool) "evidence detected" true
    (Optimizer.profile_of_change with_evidence).Optimizer.modifies_evidence

(* --- decomposition --------------------------------------------------------------- *)

let chain_graph n =
  let g = Graph.create () in
  let vars = Graph.add_vars g n in
  for k = 0 to n - 2 do
    let w = Graph.add_weight g 0.5 in
    ignore (Graph.pairwise g ~weight:w vars.(k) vars.(k + 1))
  done;
  (g, vars)

let test_decompose_chain_splits () =
  (* Chain 0-1-2-3-4 with 2 active: inactive components {0,1} and {3,4},
     each with boundary {2}; the merge heuristic (equal boundaries) joins
     them into one group. *)
  let g, vars = chain_graph 5 in
  let groups = Decompose.decompose g ~active:[ vars.(2) ] in
  Alcotest.(check int) "merged to one group" 1 (List.length groups);
  let group = List.hd groups in
  Alcotest.(check (list int)) "boundary" [ vars.(2) ] group.Decompose.active;
  Alcotest.(check int) "four inactive" 4 (List.length group.Decompose.inactive)

let test_decompose_disjoint_boundaries_stay_separate () =
  (* Two disconnected pairs with different active boundaries. *)
  let g = Graph.create () in
  let a0 = Graph.add_var g and a1 = Graph.add_var g in
  let b0 = Graph.add_var g and b1 = Graph.add_var g in
  let w = Graph.add_weight g 1.0 in
  ignore (Graph.pairwise g ~weight:w a0 a1);
  ignore (Graph.pairwise g ~weight:w b0 b1);
  let groups = Decompose.decompose g ~active:[ a1; b1 ] in
  (* Boundaries {a1} and {b1}: |union| = 2 > max(1,1), no merge. *)
  Alcotest.(check int) "two groups" 2 (List.length groups)

let test_decompose_no_active () =
  let g, _ = chain_graph 4 in
  let groups = Decompose.decompose g ~active:[] in
  Alcotest.(check int) "single component" 1 (List.length groups);
  Alcotest.(check int) "all inactive" 4 (List.length (List.hd groups).Decompose.inactive)

let test_induced_subgraph_energies () =
  let g, vars = chain_graph 3 in
  let wb = Graph.add_weight g 0.7 in
  ignore (Graph.unary g ~weight:wb vars.(0));
  let sub, mapping = Decompose.induced_subgraph g ~vars:[ vars.(0); vars.(1) ] in
  Alcotest.(check int) "two vars" 2 (Graph.num_vars sub);
  (* Factors fully inside: unary(0) and pair(0,1); the pair(1,2) is out. *)
  Alcotest.(check int) "two factors" 2 (Graph.num_factors sub);
  Alcotest.(check int) "mapping excluded" (-1) mapping.(vars.(2));
  (* Energy agreement on a matching assignment. *)
  let full = Graph.total_energy g (fun v -> v = vars.(0) || v = vars.(1)) in
  let sub_energy = Graph.total_energy sub (fun _ -> true) in
  (* Full graph has the extra pair(1,2) factor with v2 false: satisfied? No
     (conjunction needs both): contributes 0, so energies match. *)
  Alcotest.(check (float 1e-9)) "energy" full sub_energy

let test_group_subgraph_clamps_boundary () =
  let g, vars = chain_graph 3 in
  let groups = Decompose.decompose g ~active:[ vars.(1) ] in
  let group = List.hd groups in
  let sub, mapping = Decompose.group_subgraph g group in
  let boundary_sub = mapping.(vars.(1)) in
  Alcotest.(check bool) "boundary clamped" true
    (match Graph.evidence_of sub boundary_sub with Graph.Evidence _ -> true | Graph.Query -> false)

(* --- engine ------------------------------------------------------------------- *)

let engine_fixture () =
  let db = fresh_db () in
  load_features db [ ("a", "f1"); ("b", "f1"); ("c", "f2"); ("d", "f2") ];
  Database.insert_rows db "label_src" [ [| s "a"; Value.Bool true |] ];
  let prog = Program.add_rules (base_program ()) [ supervision_rule ] in
  (db, prog)

let quick_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 100;
    inference_chain = 50;
    initial_learning_epochs = 10;
    incremental_learning_epochs = 2;
  }

let test_engine_analysis_update_uses_sampling () =
  let db, prog = engine_fixture () in
  let engine = Engine.create ~options:quick_options db prog in
  let report = Engine.apply_update engine (Grounding.rules_update []) in
  Alcotest.(check string) "sampling" "sampling" (Engine.strategy_used_to_string report.Engine.strategy);
  (match report.Engine.acceptance_rate with
  | Some rate -> Alcotest.(check (float 0.0)) "full acceptance" 1.0 rate
  | None -> Alcotest.fail "expected acceptance rate")

let test_engine_exhaustion_switches () =
  let db, prog = engine_fixture () in
  let engine = Engine.create ~options:quick_options db prog in
  (* 100 samples / 50 per chain: the third analysis update exhausts. *)
  ignore (Engine.apply_update engine (Grounding.rules_update []));
  ignore (Engine.apply_update engine (Grounding.rules_update []));
  let report = Engine.apply_update engine (Grounding.rules_update []) in
  Alcotest.(check string) "variational after exhaustion" "variational"
    (Engine.strategy_used_to_string report.Engine.strategy)

let test_engine_lesion_disable_sampling () =
  let db, prog = engine_fixture () in
  let engine =
    Engine.create ~options:{ quick_options with Engine.disable_sampling = true } db prog
  in
  let report = Engine.apply_update engine (Grounding.rules_update []) in
  Alcotest.(check string) "forced variational" "variational"
    (Engine.strategy_used_to_string report.Engine.strategy)

let test_engine_lesion_disable_variational () =
  let db, prog = engine_fixture () in
  let engine =
    Engine.create ~options:{ quick_options with Engine.disable_variational = true } db prog
  in
  (* Exhaust samples; without variational the engine must still answer. *)
  ignore (Engine.apply_update engine (Grounding.rules_update []));
  ignore (Engine.apply_update engine (Grounding.rules_update []));
  let report = Engine.apply_update engine (Grounding.rules_update []) in
  Alcotest.(check bool) "not variational" true
    (report.Engine.strategy <> Engine.Used_variational)

let test_engine_rematerialize_resets () =
  let db, prog = engine_fixture () in
  let engine = Engine.create ~options:quick_options db prog in
  ignore (Engine.apply_update engine (Grounding.rules_update []));
  ignore (Engine.apply_update engine (Grounding.rules_update []));
  let (_ : float) = Engine.rematerialize engine in
  let report = Engine.apply_update engine (Grounding.rules_update []) in
  Alcotest.(check string) "sampling again" "sampling"
    (Engine.strategy_used_to_string report.Engine.strategy)

let test_engine_data_update_report () =
  let db, prog = engine_fixture () in
  let engine = Engine.create ~options:quick_options db prog in
  let delta = Dred.Delta.create () in
  Dred.Delta.insert delta "item_feature" [| s "e"; s "f1" |];
  let report = Engine.apply_update engine (Grounding.data_update delta) in
  Alcotest.(check int) "one new var" 1 report.Engine.grounding.Grounding.new_vars;
  Alcotest.(check int) "marginal array covers it" (Graph.num_vars (Engine.graph engine))
    (Array.length report.Engine.marginals)

let test_engine_rerun () =
  let db, prog = engine_fixture () in
  let marginals, seconds = Engine.rerun ~options:quick_options db prog in
  Alcotest.(check int) "four vars" 4 (Array.length marginals);
  Alcotest.(check bool) "took time" true (seconds > 0.0)

let test_engine_marginals_by_relation () =
  let db, prog = engine_fixture () in
  let engine = Engine.create ~options:quick_options db prog in
  let by_rel = Engine.marginals_by_relation engine in
  Alcotest.(check int) "four entries" 4 (List.length by_rel);
  List.iter
    (fun (rel, _, p) ->
      Alcotest.(check string) "relation" "is_pos" rel;
      Alcotest.(check bool) "prob range" true (p >= 0.0 && p <= 1.0))
    by_rel

let () =
  Alcotest.run "dd_core"
    [
      ( "program",
        [
          Alcotest.test_case "validate ok" `Quick test_program_validate_ok;
          Alcotest.test_case "non-query head" `Quick test_program_rejects_non_query_head;
          Alcotest.test_case "unbound weight var" `Quick test_program_rejects_unbound_weight_var;
          Alcotest.test_case "bad supervision" `Quick test_program_rejects_bad_supervision_target;
          Alcotest.test_case "evidence naming" `Quick test_evidence_naming;
          Alcotest.test_case "populate_head" `Quick test_deterministic_program_respects_populate;
        ] );
      ( "grounding",
        [
          Alcotest.test_case "variables and factors" `Quick test_ground_variables_and_factors;
          Alcotest.test_case "weight tying" `Quick test_ground_weight_tying;
          Alcotest.test_case "fixed weight" `Quick test_ground_fixed_weight;
          Alcotest.test_case "evidence majority" `Quick test_ground_evidence_majority;
          Alcotest.test_case "body query literals" `Quick test_ground_body_query_literals;
          Alcotest.test_case "grounding counts" `Quick test_ground_counts_in_factor_bodies;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "data update = scratch" `Quick test_extend_data_matches_scratch;
          Alcotest.test_case "rule update = scratch" `Quick test_extend_new_rule_matches_scratch;
          Alcotest.test_case "supervision updates evidence" `Quick
            test_extend_supervision_updates_evidence;
          Alcotest.test_case "deletion clamps" `Quick test_extend_deletion_clamps;
          Alcotest.test_case "new factor group" `Quick test_extend_factor_extension_path;
          Alcotest.test_case "rejects invalid rules" `Quick test_extend_rejects_invalid_rules;
        ] );
      ( "materialize",
        [
          Alcotest.test_case "strawman exact" `Quick test_strawman_exact_after_change;
          Alcotest.test_case "strawman new vars" `Quick test_strawman_rejects_new_vars;
          Alcotest.test_case "contents" `Quick test_materialize_contents;
          Alcotest.test_case "var limit" `Quick test_materialize_var_limit;
          Alcotest.test_case "budget" `Quick test_materialize_budget;
          Alcotest.test_case "cumulative change" `Quick test_cumulative_change;
          Alcotest.test_case "variational infer" `Slow test_variational_infer_absorbs_update;
          Alcotest.test_case "save/load" `Quick test_materialize_save_load;
          Alcotest.test_case "load rejects garbage" `Quick test_materialize_load_rejects_garbage;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "rules" `Quick test_optimizer_rules;
          Alcotest.test_case "profile" `Quick test_optimizer_profile;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "chain splits" `Quick test_decompose_chain_splits;
          Alcotest.test_case "disjoint boundaries" `Quick test_decompose_disjoint_boundaries_stay_separate;
          Alcotest.test_case "no active" `Quick test_decompose_no_active;
          Alcotest.test_case "induced subgraph" `Quick test_induced_subgraph_energies;
          Alcotest.test_case "group clamps boundary" `Quick test_group_subgraph_clamps_boundary;
        ] );
      ( "engine",
        [
          Alcotest.test_case "analysis uses sampling" `Quick test_engine_analysis_update_uses_sampling;
          Alcotest.test_case "exhaustion switches" `Quick test_engine_exhaustion_switches;
          Alcotest.test_case "lesion no sampling" `Quick test_engine_lesion_disable_sampling;
          Alcotest.test_case "lesion no variational" `Quick test_engine_lesion_disable_variational;
          Alcotest.test_case "rematerialize" `Quick test_engine_rematerialize_resets;
          Alcotest.test_case "data update report" `Quick test_engine_data_update_report;
          Alcotest.test_case "rerun" `Quick test_engine_rerun;
          Alcotest.test_case "marginals by relation" `Quick test_engine_marginals_by_relation;
        ] );
    ]
