(* Tests for Dd_fgraph: semantics, graph representation, exact inference,
   and the voting program's closed form. *)

module Semantics = Dd_fgraph.Semantics
module Graph = Dd_fgraph.Graph
module Exact = Dd_fgraph.Exact
module Voting = Dd_fgraph.Voting
module Stats = Dd_util.Stats

let check_close epsilon = Alcotest.(check (float epsilon))

(* --- semantics -------------------------------------------------------------- *)

let test_semantics_values () =
  check_close 0.0 "linear" 5.0 (Semantics.g Semantics.Linear 5);
  check_close 0.0 "logical 0" 0.0 (Semantics.g Semantics.Logical 0);
  check_close 0.0 "logical n" 1.0 (Semantics.g Semantics.Logical 7);
  check_close 1e-12 "ratio" (log 4.0) (Semantics.g Semantics.Ratio 3);
  check_close 0.0 "ratio 0" 0.0 (Semantics.g Semantics.Ratio 0)

let test_semantics_strings () =
  List.iter
    (fun s ->
      Alcotest.(check (option string))
        "roundtrip"
        (Some (Semantics.to_string s))
        (Option.map Semantics.to_string (Semantics.of_string (Semantics.to_string s))))
    Semantics.all;
  Alcotest.(check bool) "unknown" true (Semantics.of_string "bogus" = None)

(* --- graph ------------------------------------------------------------------- *)

let lit ?(negated = false) var = { Graph.var; negated }

let test_graph_vars_weights () =
  let g = Graph.create () in
  let a = Graph.add_var g in
  let b = Graph.add_var ~evidence:(Graph.Evidence true) g in
  Alcotest.(check int) "two vars" 2 (Graph.num_vars g);
  Alcotest.(check bool) "a query" true (Graph.evidence_of g a = Graph.Query);
  Alcotest.(check bool) "b evidence" true (Graph.evidence_of g b = Graph.Evidence true);
  Alcotest.(check (list int)) "query vars" [ a ] (Graph.query_vars g);
  Alcotest.(check bool) "evidence list" true (Graph.evidence_vars g = [ (b, true) ]);
  let w = Graph.add_weight ~learnable:true g 0.7 in
  check_close 0.0 "weight" 0.7 (Graph.weight_value g w);
  Alcotest.(check bool) "learnable" true (Graph.weight_learnable g w);
  Graph.set_weight g w 1.2;
  check_close 0.0 "updated" 1.2 (Graph.weight_value g w)

let test_graph_add_factor_validation () =
  let g = Graph.create () in
  let a = Graph.add_var g in
  let w = Graph.add_weight g 1.0 in
  Alcotest.(check bool) "unknown var" true
    (match
       Graph.add_factor g
         { Graph.head = Some 99; bodies = [||]; weight_id = w; semantics = Semantics.Linear }
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown weight" true
    (match
       Graph.add_factor g
         { Graph.head = Some a; bodies = [||]; weight_id = 5; semantics = Semantics.Linear }
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_graph_adjacency () =
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var g and c = Graph.add_var g in
  let w = Graph.add_weight g 1.0 in
  let f1 = Graph.pairwise g ~weight:w a b in
  let f2 = Graph.unary g ~weight:w a in
  Alcotest.(check (list int)) "a in both" [ f2; f1 ] (Graph.factors_of_var g a);
  Alcotest.(check (list int)) "b in one" [ f1 ] (Graph.factors_of_var g b);
  Alcotest.(check (list int)) "c in none" [] (Graph.factors_of_var g c)

let test_vars_of_factor_distinct () =
  let f =
    {
      Graph.head = Some 3;
      bodies = [| [| lit 1; lit 2 |]; [| lit 1; lit 3 |] |];
      weight_id = 0;
      semantics = Semantics.Linear;
    }
  in
  Alcotest.(check (list int)) "distinct sorted" [ 1; 2; 3 ] (Graph.vars_of_factor f)

let test_factor_energy_signs () =
  let g = Graph.create () in
  let h = Graph.add_var g and b = Graph.add_var g in
  let w = Graph.add_weight g 2.0 in
  let f =
    { Graph.head = Some h; bodies = [| [| lit b |] |]; weight_id = w; semantics = Semantics.Linear }
  in
  ignore (Graph.add_factor g f);
  let energy hv bv = Graph.factor_energy g f (fun v -> if v = h then hv else bv) in
  check_close 0.0 "head true, body true" 2.0 (energy true true);
  check_close 0.0 "head false, body true" (-2.0) (energy false true);
  check_close 0.0 "body false" 0.0 (energy true false)

let test_factor_energy_counting () =
  (* Two bodies, both satisfied: n = 2 under each semantics. *)
  let g = Graph.create () in
  let h = Graph.add_var g and b1 = Graph.add_var g and b2 = Graph.add_var g in
  let w = Graph.add_weight g 1.0 in
  let mk semantics =
    { Graph.head = Some h; bodies = [| [| lit b1 |]; [| lit b2 |] |]; weight_id = w; semantics }
  in
  let all_true _ = true in
  check_close 0.0 "linear n=2" 2.0 (Graph.factor_energy g (mk Semantics.Linear) all_true);
  check_close 0.0 "logical n=2" 1.0 (Graph.factor_energy g (mk Semantics.Logical) all_true);
  check_close 1e-12 "ratio n=2" (log 3.0) (Graph.factor_energy g (mk Semantics.Ratio) all_true)

let test_negated_literal () =
  let g = Graph.create () in
  let a = Graph.add_var g in
  let w = Graph.add_weight g 1.0 in
  let f =
    {
      Graph.head = None;
      bodies = [| [| lit ~negated:true a |] |];
      weight_id = w;
      semantics = Semantics.Logical;
    }
  in
  ignore (Graph.add_factor g f);
  check_close 0.0 "negated satisfied" 1.0 (Graph.factor_energy g f (fun _ -> false));
  check_close 0.0 "negated violated" 0.0 (Graph.factor_energy g f (fun _ -> true))

let test_empty_body_always_satisfied () =
  (* Classifier factors have empty bodies (deterministic support dropped):
     each empty body counts as satisfied. *)
  let g = Graph.create () in
  let h = Graph.add_var g in
  let w = Graph.add_weight g 1.5 in
  let f =
    { Graph.head = Some h; bodies = [| [||]; [||] |]; weight_id = w; semantics = Semantics.Linear }
  in
  ignore (Graph.add_factor g f);
  check_close 0.0 "n=2 constant" 3.0 (Graph.factor_energy g f (fun _ -> true))

let test_extend_factor () =
  let g = Graph.create () in
  let h = Graph.add_var g and b1 = Graph.add_var g and b2 = Graph.add_var g in
  let w = Graph.add_weight g 1.0 in
  let fid =
    Graph.add_factor g
      { Graph.head = Some h; bodies = [| [| lit b1 |] |]; weight_id = w; semantics = Semantics.Linear }
  in
  Graph.extend_factor g fid [| [| lit b2 |] |];
  let f = Graph.factor g fid in
  Alcotest.(check int) "two bodies" 2 (Array.length f.Graph.bodies);
  Alcotest.(check bool) "b2 adjacency" true (List.mem fid (Graph.factors_of_var g b2));
  (* Prefix energy sees only the original body. *)
  let all_true _ = true in
  check_close 0.0 "full" 2.0 (Graph.factor_energy g f all_true);
  check_close 0.0 "prefix" 1.0 (Graph.factor_energy_prefix g f all_true 1)

let test_graph_copy_independent () =
  let g = Graph.create () in
  let a = Graph.add_var g in
  let w = Graph.add_weight g 1.0 in
  ignore (Graph.unary g ~weight:w a);
  let dup = Graph.copy g in
  Graph.set_weight dup w 9.0;
  ignore (Graph.add_var dup);
  check_close 0.0 "original weight" 1.0 (Graph.weight_value g w);
  Alcotest.(check int) "original vars" 1 (Graph.num_vars g)

let test_total_energy () =
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var g in
  let w1 = Graph.add_weight g 1.0 and w2 = Graph.add_weight g 3.0 in
  ignore (Graph.unary g ~weight:w1 a);
  ignore (Graph.pairwise g ~weight:w2 a b);
  check_close 0.0 "both true" 4.0 (Graph.total_energy g (fun _ -> true));
  check_close 0.0 "only a" 1.0 (Graph.total_energy g (fun v -> v = a))

let test_degree_stats_and_freeze () =
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var ~evidence:(Graph.Evidence true) g in
  let w = Graph.add_weight g 1.0 in
  ignore (Graph.pairwise g ~weight:w a b);
  ignore (Graph.unary g ~weight:w a);
  let mean, worst = Graph.degree_stats g in
  check_close 1e-9 "mean degree" 1.5 mean;
  Alcotest.(check int) "max degree" 2 worst;
  let frozen = Graph.freeze_assignment g in
  Alcotest.(check bool) "evidence frozen" true frozen.(b);
  Alcotest.(check bool) "query default false" false frozen.(a)

(* --- exact inference --------------------------------------------------------- *)

let test_exact_single_unary () =
  (* One variable with bias w: P(true) = sigmoid(w). *)
  let g = Graph.create () in
  let a = Graph.add_var g in
  let w = Graph.add_weight g 0.8 in
  ignore (Graph.unary g ~weight:w a);
  let marginals = Exact.marginals g in
  check_close 1e-9 "sigmoid" (Stats.sigmoid 0.8) marginals.(a)

let test_exact_pairwise_hand_computed () =
  (* Two vars, one conjunction factor with weight w:
     worlds: 00,01,10 weight 1; 11 weight e^w.
     P(a) = (1 + e^w) / (3 + e^w). *)
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var g in
  let w = Graph.add_weight g 1.3 in
  ignore (Graph.pairwise g ~weight:w a b);
  let marginals = Exact.marginals g in
  let expected = (1.0 +. exp 1.3) /. (3.0 +. exp 1.3) in
  check_close 1e-9 "pair marginal" expected marginals.(a);
  check_close 1e-9 "symmetric" expected marginals.(b)

let test_exact_evidence_conditioning () =
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var ~evidence:(Graph.Evidence true) g in
  let w = Graph.add_weight g 2.0 in
  ignore (Graph.pairwise g ~weight:w a b);
  let marginals = Exact.marginals g in
  (* With b clamped true: P(a) = e^w / (1 + e^w). *)
  check_close 1e-9 "conditioned" (Stats.sigmoid 2.0) marginals.(a);
  check_close 1e-9 "evidence reported" 1.0 marginals.(b)

let test_exact_probabilities_sum_to_one () =
  let g = Graph.create () in
  let a = Graph.add_var g and b = Graph.add_var g and c = Graph.add_var g in
  let w = Graph.add_weight g 0.5 in
  ignore (Graph.pairwise g ~weight:w a b);
  ignore (Graph.pairwise g ~weight:w b c);
  let worlds = Exact.enumerate g in
  Alcotest.(check int) "eight worlds" 8 (List.length worlds);
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 worlds in
  check_close 1e-9 "normalized" 1.0 total

let test_exact_size_guard () =
  let g = Graph.create () in
  ignore (Graph.add_vars g 30);
  Alcotest.(check bool) "too large" true
    (match Exact.marginals g with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- voting ------------------------------------------------------------------ *)

let test_voting_symmetric_is_half () =
  List.iter
    (fun semantics ->
      let p =
        Voting.exact_marginal_q
          { Voting.default with Voting.n_up = 8; n_down = 8; semantics }
      in
      check_close 1e-9 (Semantics.to_string semantics) 0.5 p)
    Semantics.all

let test_voting_example_2_5 () =
  (* |Up| = 10^6, |Down| = 10^6 - 100 (the paper's running numbers). *)
  let cfg n_up n_down semantics =
    { Voting.default with Voting.n_up; n_down; semantics }
  in
  let linear = Voting.exact_marginal_q (cfg 1_000_000 999_900 Semantics.Linear) in
  Alcotest.(check bool) "linear ~ 1" true (linear > 0.999);
  let ratio = Voting.exact_marginal_q (cfg 1_000_000 999_900 Semantics.Ratio) in
  Alcotest.(check bool) "ratio ~ 0.5" true (abs_float (ratio -. 0.5) < 0.01);
  let logical = Voting.exact_marginal_q (cfg 1_000_000 999_900 Semantics.Logical) in
  check_close 1e-6 "logical exactly 0.5" 0.5 logical

let test_voting_logical_ignores_magnitude () =
  (* Under logical semantics only the existence of votes matters: growing
     the up side 100x barely moves the marginal (both sides almost surely
     have a vote already). *)
  let p n_up =
    Voting.exact_marginal_q
      { Voting.default with Voting.n_up; n_down = 5; semantics = Semantics.Logical }
  in
  Alcotest.(check bool) "magnitude invisible" true (abs_float (p 100 -. p 10_000) < 1e-6);
  (* Linear semantics sees the same change dramatically. *)
  let q n_up =
    Voting.exact_marginal_q
      { Voting.default with Voting.n_up; n_down = 5; semantics = Semantics.Linear }
  in
  Alcotest.(check bool) "linear sees it" true (q 10_000 -. q 5 > 0.01 || q 10_000 > 0.999)

let test_voting_closed_form_matches_enumeration () =
  (* The DP closed form must agree with brute-force enumeration on small
     instances, for every semantics and with unary weights. *)
  List.iter
    (fun semantics ->
      let cfg =
        {
          Voting.n_up = 3;
          n_down = 2;
          rule_weight = 0.8;
          unary_up = 0.3;
          unary_down = -0.2;
          semantics;
        }
      in
      let graph, q, _, _ = Voting.build cfg in
      let exact = (Exact.marginals graph).(q) in
      let closed = Voting.exact_marginal_q cfg in
      check_close 1e-9 (Semantics.to_string semantics) exact closed)
    Semantics.all

let test_log_choose () =
  check_close 1e-9 "C(5,2)" (log 10.0) (Voting.log_choose 5 2);
  check_close 1e-9 "C(n,0)" 0.0 (Voting.log_choose 9 0);
  Alcotest.(check bool) "out of range" true (Voting.log_choose 3 5 = neg_infinity)

(* --- serialization --------------------------------------------------------------- *)

module Serialize = Dd_fgraph.Serialize

let rich_graph () =
  let g = Graph.create () in
  let a = Graph.add_var g
  and b = Graph.add_var ~evidence:(Graph.Evidence true) g
  and c = Graph.add_var ~evidence:(Graph.Evidence false) g in
  let w1 = Graph.add_weight ~learnable:true g 0.75 in
  let w2 = Graph.add_weight g (-1.25) in
  ignore (Graph.unary g ~weight:w1 a);
  ignore (Graph.pairwise g ~weight:w2 b c);
  ignore
    (Graph.add_factor g
       {
         Graph.head = Some a;
         bodies = [| [| lit b |]; [| lit ~negated:true c; lit a |] |];
         weight_id = w1;
         semantics = Semantics.Ratio;
       });
  g

let graphs_equivalent g1 g2 =
  Graph.num_vars g1 = Graph.num_vars g2
  && Graph.num_factors g1 = Graph.num_factors g2
  && Graph.num_weights g1 = Graph.num_weights g2
  && List.init (Graph.num_vars g1) (fun v -> Graph.evidence_of g1 v)
     = List.init (Graph.num_vars g2) (fun v -> Graph.evidence_of g2 v)
  && List.init (Graph.num_weights g1) (fun w ->
         (Graph.weight_value g1 w, Graph.weight_learnable g1 w))
     = List.init (Graph.num_weights g2) (fun w ->
           (Graph.weight_value g2 w, Graph.weight_learnable g2 w))
  && List.init (Graph.num_factors g1) (Graph.factor g1)
     = List.init (Graph.num_factors g2) (Graph.factor g2)

let test_serialize_roundtrip () =
  let g = rich_graph () in
  let text = Serialize.to_string g in
  let back = Serialize.of_string text in
  Alcotest.(check bool) "roundtrip" true (graphs_equivalent g back)

let test_serialize_preserves_distribution () =
  let g = rich_graph () in
  let back = Serialize.of_string (Serialize.to_string g) in
  Alcotest.(check bool) "same marginals" true
    (Dd_util.Stats.max_abs_diff (Exact.marginals g) (Exact.marginals back) < 1e-12)

let test_serialize_file_roundtrip () =
  let g = rich_graph () in
  let path = Filename.temp_file "ddgraph_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Serialize.save path g;
      Alcotest.(check bool) "file roundtrip" true (graphs_equivalent g (Serialize.load path)))

let test_serialize_empty_graph () =
  let g = Graph.create () in
  let back = Serialize.of_string (Serialize.to_string g) in
  Alcotest.(check int) "no vars" 0 (Graph.num_vars back);
  Alcotest.(check int) "no factors" 0 (Graph.num_factors back)

let test_serialize_rejects_garbage () =
  List.iter
    (fun text ->
      Alcotest.(check bool) ("rejects: " ^ text) true
        (match Serialize.of_string text with
        | _ -> false
        | exception Serialize.Format_error _ -> true))
    [ "nonsense"; "ddgraph 2\nvars 0\nend"; "ddgraph 1\nvars x\nend";
      "ddgraph 1\nvars 1\nfactor 0 0 bogus 0\nend" ]

let expect_format_error label text =
  Alcotest.(check bool) label true
    (match Serialize.of_string text with
    | _ -> false
    | exception Serialize.Format_error _ -> true)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then Alcotest.fail ("substring not found: " ^ sub)
    else if String.sub s i m = sub then i
    else go (i + 1)
  in
  go 0

let test_serialize_rejects_truncation () =
  let text = Serialize.to_string (rich_graph ()) in
  List.iter
    (fun keep ->
      expect_format_error (Printf.sprintf "truncated to %d bytes" keep)
        (String.sub text 0 keep))
    [ String.length text - 5; String.length text / 2; 12 ]

let test_serialize_rejects_flipped_byte () =
  let text = Serialize.to_string (rich_graph ()) in
  (* Flip one bit of a digit inside a factor line: the line still parses
     (or fails), but the CRC footer must catch it either way. *)
  let pos = find_sub text "factor " + String.length "factor " in
  let b = Bytes.of_string text in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
  expect_format_error "flipped byte in factor line" (Bytes.to_string b)

let test_serialize_rejects_forged_checksum () =
  let text = Serialize.to_string (rich_graph ()) in
  let i = find_sub text "checksum " + String.length "checksum " in
  let forged = if String.sub text i 8 = "deadbeef" then "00000000" else "deadbeef" in
  expect_format_error "forged checksum footer"
    (String.sub text 0 i ^ forged ^ String.sub text (i + 8) (String.length text - i - 8))

let test_serialize_rejects_duplicate_end () =
  let text = Serialize.to_string (rich_graph ()) in
  expect_format_error "duplicate end" (text ^ "end\n")

let test_serialize_rejects_out_of_range_refs () =
  (* v1 texts (no checksum) so the reference checks themselves are what
     rejects these, not the footer. *)
  List.iter
    (fun (label, text) -> expect_format_error label text)
    [
      ( "weight id out of range",
        "ddgraph 1\nvars 1\nweight 0.5 0\nfactor 0 3 ratio 1 | 1 0 0\nend" );
      ( "literal var out of range",
        "ddgraph 1\nvars 1\nweight 0.5 0\nfactor 0 0 ratio 1 | 1 5 0\nend" );
      ( "head var out of range",
        "ddgraph 1\nvars 1\nweight 0.5 0\nfactor 7 0 ratio 1 | 1 0 0\nend" );
    ]

let test_serialize_v1_still_loads () =
  (* The v2 writer's body is the v1 body; stripping the footer yields a
     valid v1 file. *)
  let g = rich_graph () in
  let text = Serialize.to_string g in
  let i = find_sub text "checksum " in
  let v1 =
    "ddgraph 1" ^ String.sub text 9 (i - 9) ^ "end\n"
  in
  Alcotest.(check bool) "v1 body loads" true
    (graphs_equivalent g (Serialize.of_string v1))

let test_graph_validate () =
  let g = rich_graph () in
  Alcotest.(check bool) "valid graph" true (Graph.validate g = Ok ());
  let bad_weight = rich_graph () in
  Graph.set_weight bad_weight 0 Float.nan;
  Alcotest.(check bool) "nan weight rejected" true
    (match Graph.validate bad_weight with Error _ -> true | Ok () -> false)

(* --- qcheck ------------------------------------------------------------------- *)

let random_graph seed =
  let rng = Dd_util.Prng.create seed in
  let g = Graph.create () in
  let n = 3 + Dd_util.Prng.int_below rng 5 in
  let vars = Graph.add_vars g n in
  Array.iter
    (fun v ->
      if Dd_util.Prng.bernoulli rng 0.2 then
        Graph.set_evidence g v (Graph.Evidence (Dd_util.Prng.bool rng)))
    vars;
  for _ = 1 to 1 + Dd_util.Prng.int_below rng 6 do
    let w =
      Graph.add_weight
        ~learnable:(Dd_util.Prng.bool rng)
        g
        (Dd_util.Prng.float_range rng (-2.0) 2.0)
    in
    let pick () =
      { Graph.var = vars.(Dd_util.Prng.int_below rng n); negated = Dd_util.Prng.bool rng }
    in
    let body () = Array.init (1 + Dd_util.Prng.int_below rng 2) (fun _ -> pick ()) in
    ignore
      (Graph.add_factor g
         {
           Graph.head =
             (if Dd_util.Prng.bool rng then Some vars.(Dd_util.Prng.int_below rng n)
              else None);
           bodies = Array.init (1 + Dd_util.Prng.int_below rng 3) (fun _ -> body ());
           weight_id = w;
           semantics =
             Dd_util.Prng.choice rng [| Semantics.Linear; Semantics.Logical; Semantics.Ratio |];
         })
  done;
  g

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"serialization roundtrip (random graphs)" ~count:100 small_int
      (fun seed ->
        let g = random_graph seed in
        let back = Serialize.of_string (Serialize.to_string g) in
        graphs_equivalent g back);
    Test.make ~name:"serialization preserves energies" ~count:50 small_int (fun seed ->
        let g = random_graph seed in
        let back = Serialize.of_string (Serialize.to_string g) in
        let rng = Dd_util.Prng.create (seed + 1) in
        let world = Array.init (Graph.num_vars g) (fun _ -> Dd_util.Prng.bool rng) in
        abs_float
          (Graph.total_energy g (fun v -> world.(v))
          -. Graph.total_energy back (fun v -> world.(v)))
        < 1e-9);
    Test.make ~name:"g monotone in n" ~count:200
      (pair (oneofl Semantics.all) (int_range 0 1000))
      (fun (s, n) -> Semantics.g s (n + 1) >= Semantics.g s n);
    Test.make ~name:"voting closed form in [0,1]" ~count:100
      (triple (int_range 0 50) (int_range 0 50) (oneofl Semantics.all))
      (fun (up, down, semantics) ->
        let p =
          Voting.exact_marginal_q
            { Voting.default with Voting.n_up = up; n_down = down; semantics }
        in
        p >= 0.0 && p <= 1.0);
    Test.make ~name:"more up votes never lower P(q)" ~count:100
      (pair (int_range 1 30) (oneofl Semantics.all))
      (fun (n, semantics) ->
        let p k =
          Voting.exact_marginal_q
            { Voting.default with Voting.n_up = k; n_down = n; semantics }
        in
        p (n + 5) >= p n -. 1e-9);
  ]

let () =
  Alcotest.run "dd_fgraph"
    [
      ( "semantics",
        [
          Alcotest.test_case "g values" `Quick test_semantics_values;
          Alcotest.test_case "strings" `Quick test_semantics_strings;
        ] );
      ( "graph",
        [
          Alcotest.test_case "vars/weights" `Quick test_graph_vars_weights;
          Alcotest.test_case "factor validation" `Quick test_graph_add_factor_validation;
          Alcotest.test_case "adjacency" `Quick test_graph_adjacency;
          Alcotest.test_case "vars_of_factor" `Quick test_vars_of_factor_distinct;
          Alcotest.test_case "energy signs" `Quick test_factor_energy_signs;
          Alcotest.test_case "energy counting" `Quick test_factor_energy_counting;
          Alcotest.test_case "negated literal" `Quick test_negated_literal;
          Alcotest.test_case "empty bodies" `Quick test_empty_body_always_satisfied;
          Alcotest.test_case "extend factor" `Quick test_extend_factor;
          Alcotest.test_case "copy" `Quick test_graph_copy_independent;
          Alcotest.test_case "total energy" `Quick test_total_energy;
          Alcotest.test_case "degree/freeze" `Quick test_degree_stats_and_freeze;
        ] );
      ( "exact",
        [
          Alcotest.test_case "single unary" `Quick test_exact_single_unary;
          Alcotest.test_case "pairwise hand-computed" `Quick test_exact_pairwise_hand_computed;
          Alcotest.test_case "evidence conditioning" `Quick test_exact_evidence_conditioning;
          Alcotest.test_case "normalized" `Quick test_exact_probabilities_sum_to_one;
          Alcotest.test_case "size guard" `Quick test_exact_size_guard;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "distribution preserved" `Quick test_serialize_preserves_distribution;
          Alcotest.test_case "file roundtrip" `Quick test_serialize_file_roundtrip;
          Alcotest.test_case "empty graph" `Quick test_serialize_empty_graph;
          Alcotest.test_case "rejects garbage" `Quick test_serialize_rejects_garbage;
          Alcotest.test_case "rejects truncation" `Quick test_serialize_rejects_truncation;
          Alcotest.test_case "rejects flipped byte" `Quick test_serialize_rejects_flipped_byte;
          Alcotest.test_case "rejects forged checksum" `Quick
            test_serialize_rejects_forged_checksum;
          Alcotest.test_case "rejects duplicate end" `Quick
            test_serialize_rejects_duplicate_end;
          Alcotest.test_case "rejects out-of-range refs" `Quick
            test_serialize_rejects_out_of_range_refs;
          Alcotest.test_case "v1 still loads" `Quick test_serialize_v1_still_loads;
          Alcotest.test_case "graph validate" `Quick test_graph_validate;
        ] );
      ( "voting",
        [
          Alcotest.test_case "symmetric half" `Quick test_voting_symmetric_is_half;
          Alcotest.test_case "example 2.5" `Quick test_voting_example_2_5;
          Alcotest.test_case "logical ignores magnitude" `Quick test_voting_logical_ignores_magnitude;
          Alcotest.test_case "matches enumeration" `Quick test_voting_closed_form_matches_enumeration;
          Alcotest.test_case "log choose" `Quick test_log_choose;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
