(* Tests for Dd_ingest: deterministic document streams, micro-batching,
   cross-document entity canonicalization, and the feed that drives
   arriving batches through the transactional supervisor. *)

module Source = Dd_ingest.Source
module Batcher = Dd_ingest.Batcher
module Canonicalizer = Dd_ingest.Canonicalizer
module Feed = Dd_ingest.Feed
module Corpus = Dd_kbc.Corpus
module Pipeline = Dd_kbc.Pipeline
module Checkpoint = Dd_kbc.Checkpoint
module Engine = Dd_core.Engine
module Program = Dd_core.Program
module Grounding = Dd_core.Grounding
module Txn = Dd_core.Txn
module Database = Dd_relational.Database
module Relation = Dd_relational.Relation
module Value = Dd_relational.Value

(* --- source ---------------------------------------------------------------- *)

let small_config =
  { Source.default with Source.docs = 30; entities = 8; relations = 2; seed = 5 }

let drain source =
  let rec go acc = match Source.next source with None -> List.rev acc | Some d -> go (d :: acc) in
  go []

let payload_fingerprint = function
  | Source.Text { text; names; aliases } ->
    text ^ "|" ^ String.concat "," names ^ "|"
    ^ String.concat "," (List.map (fun (a, b) -> a ^ "=" ^ b) aliases)
  | Source.Rows tables ->
    String.concat ";" (List.map (fun (n, rows) -> Printf.sprintf "%s:%d" n (List.length rows)) tables)

let test_source_deterministic () =
  let a = drain (Source.synthetic small_config) in
  let b = drain (Source.synthetic small_config) in
  Alcotest.(check int) "count" (List.length a) (List.length b);
  List.iter2
    (fun (x : Source.doc) (y : Source.doc) ->
      Alcotest.(check int) "id" x.Source.id y.Source.id;
      Alcotest.(check (float 0.0)) "arrival" x.Source.arrival_s y.Source.arrival_s;
      Alcotest.(check string) "payload" (payload_fingerprint x.Source.payload)
        (payload_fingerprint y.Source.payload))
    a b

let test_source_arrivals_increase () =
  let docs = drain (Source.synthetic small_config) in
  Alcotest.(check int) "total" small_config.Source.docs (List.length docs);
  let rec check = function
    | a :: (b : Source.doc) :: rest ->
      Alcotest.(check bool) "monotone" true (a.Source.arrival_s < b.Source.arrival_s);
      check (b :: rest)
    | _ -> ()
  in
  check docs

let test_source_seed_changes_stream () =
  let a = drain (Source.synthetic small_config) in
  let b = drain (Source.synthetic { small_config with Source.seed = 6 }) in
  let fp docs =
    String.concat "\n" (List.map (fun (d : Source.doc) -> payload_fingerprint d.Source.payload) docs)
  in
  Alcotest.(check bool) "different" true (fp a <> fp b)

let test_source_replay () =
  let corpus = Corpus.generate { Dd_kbc.Systems.news with Corpus.docs = 6 } in
  let source = Source.replay ~rate:100.0 corpus in
  Alcotest.(check int) "total" 6 (Source.total_docs source);
  let docs = drain source in
  Alcotest.(check int) "drained" 6 (List.length docs);
  List.iter
    (fun (d : Source.doc) ->
      match d.Source.payload with
      | Source.Rows _ -> ()
      | Source.Text _ -> Alcotest.fail "replay must emit Rows payloads")
    docs

(* --- batcher --------------------------------------------------------------- *)

let doc id arrival_s =
  { Source.id; arrival_s; payload = Source.Text { text = ""; names = []; aliases = [] } }

let test_batcher_count_trigger () =
  let b = Batcher.create ~max_docs:3 ~max_delay_s:10.0 () in
  Alcotest.(check bool) "no batch" true (Batcher.push b (doc 0 0.01) = None);
  Alcotest.(check bool) "no batch" true (Batcher.push b (doc 1 0.02) = None);
  match Batcher.push b (doc 2 0.03) with
  | None -> Alcotest.fail "expected a count-triggered batch"
  | Some batch ->
    Alcotest.(check int) "docs" 3 (List.length batch.Batcher.docs);
    Alcotest.(check bool) "trigger" true (batch.Batcher.trigger = Batcher.Count);
    Alcotest.(check (float 1e-9)) "ready" 0.03 batch.Batcher.ready_s;
    Alcotest.(check int) "drained buffer" 0 (Batcher.pending b)

let test_batcher_deadline_trigger () =
  let b = Batcher.create ~max_docs:100 ~max_delay_s:0.05 () in
  Alcotest.(check bool) "buffered" true (Batcher.push b (doc 0 1.0) = None);
  (* The next arrival lands past the first doc's deadline: the buffered
     batch closes at the deadline, the newcomer stays pending. *)
  (match Batcher.push b (doc 1 1.2) with
  | None -> Alcotest.fail "expected a deadline-triggered batch"
  | Some batch ->
    Alcotest.(check int) "docs" 1 (List.length batch.Batcher.docs);
    Alcotest.(check bool) "trigger" true (batch.Batcher.trigger = Batcher.Deadline);
    Alcotest.(check (float 1e-9)) "ready at deadline" 1.05 batch.Batcher.ready_s);
  Alcotest.(check int) "newcomer pending" 1 (Batcher.pending b)

let test_batcher_due_and_drain () =
  let b = Batcher.create ~max_docs:100 ~max_delay_s:0.05 () in
  ignore (Batcher.push b (doc 0 1.0));
  Alcotest.(check bool) "not due yet" true (Batcher.due b ~now_s:1.02 = None);
  (match Batcher.due b ~now_s:1.06 with
  | Some batch -> Alcotest.(check bool) "deadline" true (batch.Batcher.trigger = Batcher.Deadline)
  | None -> Alcotest.fail "expected due batch");
  Alcotest.(check bool) "empty drain" true (Batcher.drain b = None);
  ignore (Batcher.push b (doc 1 2.0));
  match Batcher.drain b with
  | Some batch ->
    Alcotest.(check bool) "drain trigger" true (batch.Batcher.trigger = Batcher.Drain);
    Alcotest.(check int) "one doc" 1 (List.length batch.Batcher.docs)
  | None -> Alcotest.fail "expected drained batch"

(* --- canonicalizer --------------------------------------------------------- *)

let test_canon_observe_case_insensitive () =
  let c = Canonicalizer.create () in
  let r1 = Canonicalizer.observe c "Barack Obama" in
  Alcotest.(check bool) "fresh" true r1.Canonicalizer.fresh_entity;
  Alcotest.(check string) "key" "barack obama" r1.Canonicalizer.key;
  Alcotest.(check string) "entity" "ent:barack obama" r1.Canonicalizer.entity;
  let r2 = Canonicalizer.observe c "BARACK  OBAMA." in
  Alcotest.(check bool) "not fresh" false r2.Canonicalizer.fresh_key;
  Alcotest.(check string) "same entity" r1.Canonicalizer.entity r2.Canonicalizer.entity;
  Alcotest.(check int) "one entity" 1 (Canonicalizer.entities c)

let test_canon_alias_before_observation () =
  let c = Canonicalizer.create () in
  (* Both sides unseen: growth, not a merge event. *)
  Alcotest.(check bool) "no merge" true (Canonicalizer.declare_alias c "Bo" "Barack Obama" = None);
  let r = Canonicalizer.observe c "bo" in
  Alcotest.(check string) "routes to first-registered" "ent:bo" r.Canonicalizer.entity;
  Alcotest.(check string) "other side too" "ent:bo"
    (Canonicalizer.observe c "Barack Obama").Canonicalizer.entity;
  Alcotest.(check int) "one entity" 1 (Canonicalizer.entities c)

let test_canon_late_alias_merges () =
  let c = Canonicalizer.create () in
  let a = Canonicalizer.observe c "Barack Obama" in
  let b = Canonicalizer.observe c "Obama" in
  Alcotest.(check bool) "distinct" true (a.Canonicalizer.entity <> b.Canonicalizer.entity);
  (match Canonicalizer.declare_alias c "obama" "BARACK OBAMA" with
  | None -> Alcotest.fail "expected a merge of two established entities"
  | Some m ->
    Alcotest.(check string) "older id wins" "ent:barack obama" m.Canonicalizer.winner;
    Alcotest.(check string) "younger id loses" "ent:obama" m.Canonicalizer.loser;
    Alcotest.(check (list string)) "loser keys" [ "obama" ] m.Canonicalizer.loser_keys);
  Alcotest.(check (option string)) "rebound" (Some "ent:barack obama")
    (Canonicalizer.resolve c "Obama");
  Alcotest.(check int) "one entity" 1 (Canonicalizer.entities c);
  (* Replaying the alias is idempotent. *)
  Alcotest.(check bool) "idempotent" true (Canonicalizer.declare_alias c "Obama" "Barack Obama" = None)

let test_canon_winner_stability () =
  let c = Canonicalizer.create () in
  List.iter (fun s -> ignore (Canonicalizer.observe c s)) [ "A One"; "B Two"; "C Three" ];
  (match Canonicalizer.declare_alias c "B Two" "C Three" with
  | Some m -> Alcotest.(check string) "earlier of the pair" "ent:b two" m.Canonicalizer.winner
  | None -> Alcotest.fail "expected merge");
  (match Canonicalizer.declare_alias c "C Three" "A One" with
  | Some m ->
    Alcotest.(check string) "global earliest wins" "ent:a one" m.Canonicalizer.winner;
    Alcotest.(check string) "combined set loses its id" "ent:b two" m.Canonicalizer.loser;
    Alcotest.(check (list string)) "both keys rebind" [ "b two"; "c three" ]
      m.Canonicalizer.loser_keys
  | None -> Alcotest.fail "expected merge");
  List.iter
    (fun s ->
      Alcotest.(check (option string)) s (Some "ent:a one") (Canonicalizer.resolve c s))
    [ "A One"; "B Two"; "C Three" ];
  Alcotest.(check (list string)) "members" [ "a one"; "b two"; "c three" ]
    (Canonicalizer.members c "ent:a one")

let populated_canonicalizer () =
  let c = Canonicalizer.create () in
  List.iter
    (fun s -> ignore (Canonicalizer.observe c s))
    [ "First1 Last1"; "Last2"; "Nick3"; "FIRST1 LAST1"; "First2 Last2" ];
  ignore (Canonicalizer.declare_alias c "Last2" "First2 Last2");
  ignore (Canonicalizer.declare_alias c "Nick3" "First3 Last3");
  c

let test_canon_encode_roundtrip () =
  let c = populated_canonicalizer () in
  let encoded = Canonicalizer.encode c in
  match Canonicalizer.decode encoded with
  | Error m -> Alcotest.fail ("decode failed: " ^ m)
  | Ok c' ->
    Alcotest.(check string) "byte-identical re-encode" encoded (Canonicalizer.encode c');
    Alcotest.(check int) "entities" (Canonicalizer.entities c) (Canonicalizer.entities c');
    Alcotest.(check (list string)) "keys in order" (Canonicalizer.all_keys c)
      (Canonicalizer.all_keys c');
    List.iter
      (fun key ->
        Alcotest.(check (option string)) key (Canonicalizer.resolve c key)
          (Canonicalizer.resolve c' key))
      (Canonicalizer.all_keys c)

let test_canon_decode_rejects_corruption () =
  let encoded = Canonicalizer.encode (populated_canonicalizer ()) in
  (* Flip one payload byte: the CRC gate must catch it. *)
  let corrupt = Bytes.of_string encoded in
  let i = String.length "ddcanon 1\n" + 2 in
  Bytes.set corrupt i (if Bytes.get corrupt i = 'x' then 'y' else 'x');
  (match Canonicalizer.decode (Bytes.to_string corrupt) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted payload must not decode");
  (match Canonicalizer.decode "ddcanon 1\nkeys 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated payload must not decode");
  match Canonicalizer.decode "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty payload must not decode"

(* --- feed ------------------------------------------------------------------ *)

let test_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 120;
    inference_chain = 60;
    initial_learning_epochs = 8;
    incremental_learning_epochs = 3;
  }

let feed_program () =
  Program.add_rules
    (Pipeline.base_program ())
    (Pipeline.rules_of Pipeline.FE1 @ Pipeline.rules_of Pipeline.S1)

let make_feed ?(canonicalize = true) source =
  let db = Database.create () in
  Feed.prepare_database db source;
  let engine = Engine.create ~options:test_options db (feed_program ()) in
  let txn = Txn.create engine in
  (txn, Feed.create ~canonicalize txn)

let el_rows txn =
  let db = Grounding.database (Engine.grounding (Txn.engine txn)) in
  match Database.find_opt db "el" with
  | None -> []
  | Some rel ->
    let rows = ref [] in
    Relation.iter
      (fun tuple _ ->
        match (tuple.(0), tuple.(1)) with
        | Value.Str key, Value.Str eid -> rows := (key, eid) :: !rows
        | _ -> ())
      rel;
    List.sort compare !rows

let text_doc id arrival_s ?(names = []) ?(aliases = []) text =
  { Source.id; arrival_s; payload = Source.Text { text; names; aliases } }

let batch ?(ready_s = 0.0) docs = { Batcher.docs; ready_s; trigger = Batcher.Drain }

let test_feed_merges_not_forks () =
  let cfg = { small_config with Source.docs = 20 } in
  let txn, feed = make_feed (Source.synthetic cfg) in
  let summary = Feed.run feed (Source.synthetic cfg) (Batcher.create ~max_docs:4 ()) in
  Alcotest.(check int) "all docs" 20 summary.Feed.run_docs;
  Alcotest.(check int) "no quarantine" 0 summary.Feed.run_quarantined;
  let canon_entities = Feed.entities_bound feed in
  let _, feed_raw = make_feed ~canonicalize:false (Source.synthetic cfg) in
  let raw = Feed.run feed_raw (Source.synthetic cfg) (Batcher.create ~max_docs:4 ()) in
  Alcotest.(check int) "no quarantine raw" 0 raw.Feed.run_quarantined;
  Alcotest.(check bool) "canonicalization merges entities" true
    (canon_entities < Feed.entities_bound feed_raw);
  Alcotest.(check bool) "not fewer than truth" true
    (canon_entities >= Source.true_entities (Source.synthetic cfg));
  (* Every [el] row in the engine links a key to its current canonical id. *)
  let c = Feed.canonicalizer feed in
  let rows = el_rows txn in
  Alcotest.(check bool) "el populated" true (rows <> []);
  List.iter
    (fun (key, eid) ->
      Alcotest.(check (option string)) key (Some eid) (Canonicalizer.resolve c key))
    rows;
  Alcotest.(check bool) "latencies recorded" true
    (Array.length summary.Feed.latencies_s = 20)

let test_feed_late_alias_retracts () =
  let source = Source.synthetic { small_config with Source.docs = 2 } in
  let txn, feed = make_feed source in
  (* Establish two distinct entities, then a late alias merges them. *)
  let r1 =
    Feed.ingest feed
      (batch [ text_doc 0 0.0 ~names:[ "First9 Last9"; "Last8" ] "First9 Last9 r0_cue0 Last8." ])
  in
  (match r1.Feed.outcome with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("batch 1 failed: " ^ Txn.error_message e));
  Alcotest.(check int) "no merges yet" 0 r1.Feed.merges;
  let rows = el_rows txn in
  Alcotest.(check (list (pair string string)))
    "forked bindings"
    [ ("first9 last9", "ent:first9 last9"); ("last8", "ent:last8") ]
    rows;
  let r2 =
    Feed.ingest feed
      (batch ~ready_s:0.1
         [ text_doc 1 0.1 ~aliases:[ ("Last8", "First9 Last9") ] "Last8 r0_cue1 First9 Last9." ])
  in
  (match r2.Feed.outcome with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("batch 2 failed: " ^ Txn.error_message e));
  Alcotest.(check int) "one merge" 1 r2.Feed.merges;
  let stats = Feed.stats feed in
  Alcotest.(check int) "one retract" 1 stats.Feed.el_retracts;
  Alcotest.(check (list (pair string string)))
    "rebound to the older id"
    [ ("first9 last9", "ent:first9 last9"); ("last8", "ent:first9 last9") ]
    (el_rows txn);
  Alcotest.(check int) "one entity" 1 (Feed.entities_bound feed)

let test_feed_state_roundtrip () =
  let cfg = { small_config with Source.docs = 12 } in
  let _, feed = make_feed (Source.synthetic cfg) in
  ignore (Feed.run feed (Source.synthetic cfg) (Batcher.create ()));
  let encoded = Feed.encode_state feed in
  match Feed.decode_state encoded with
  | Error m -> Alcotest.fail ("feed state did not decode: " ^ m)
  | Ok (sid, canon) ->
    Alcotest.(check bool) "sid advanced" true (sid > 0);
    Alcotest.(check int) "entities preserved" (Canonicalizer.entities (Feed.canonicalizer feed))
      (Canonicalizer.entities canon);
    Alcotest.(check string) "re-encode byte-identical" (Canonicalizer.encode (Feed.canonicalizer feed))
      (Canonicalizer.encode canon)

(* --- checkpoint sidecar blobs + recovery ----------------------------------- *)

let scratch name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) ("dd_ingest_" ^ name) in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let test_blob_roundtrip () =
  let store = Checkpoint.open_store (scratch "blob") in
  Alcotest.(check bool) "missing is None" true (Checkpoint.load_blob store ~name:"nope" = Ok None);
  let content = "line one\nline two\x00binary" in
  Checkpoint.save_blob store ~name:"thing" content;
  (match Checkpoint.load_blob store ~name:"thing" with
  | Ok (Some got) -> Alcotest.(check string) "byte-exact" content got
  | _ -> Alcotest.fail "expected saved blob back");
  Checkpoint.save_blob store ~name:"thing" "replaced";
  (match Checkpoint.load_blob store ~name:"thing" with
  | Ok (Some got) -> Alcotest.(check string) "overwritten" "replaced" got
  | _ -> Alcotest.fail "expected replacement blob");
  (try
     Checkpoint.save_blob store ~name:"../escape" "x";
     Alcotest.fail "bad name must be rejected"
   with Invalid_argument _ -> ());
  (* Corrupt the file on disk: load must fail the CRC gate. *)
  let path = Filename.concat (scratch "blob") "BLOB_thing" in
  let oc = open_out_bin path in
  output_string oc "ddblob 1 8 00000000\nreplaced\nend\n";
  close_out oc;
  match Checkpoint.load_blob store ~name:"thing" with
  | Error (Checkpoint.Corrupt _) -> ()
  | _ -> Alcotest.fail "corrupt blob must be an error"

let test_recovery_preserves_canonical_ids () =
  let cfg = { small_config with Source.docs = 16 } in
  let txn, feed = make_feed (Source.synthetic cfg) in
  let summary = Feed.run feed (Source.synthetic cfg) (Batcher.create ()) in
  Alcotest.(check int) "clean run" 0 summary.Feed.run_quarantined;
  let store = Checkpoint.open_store (scratch "recover") in
  let before = Feed.encode_state feed in
  Checkpoint.save store (Txn.engine txn);
  Checkpoint.save_blob store ~name:"canonicalizer" before;
  match Checkpoint.recover store with
  | Error e -> Alcotest.fail (Checkpoint.error_to_string e)
  | Ok (engine, _) -> (
    match Checkpoint.load_blob store ~name:"canonicalizer" with
    | Ok (Some blob) -> (
      match Feed.decode_state blob with
      | Error m -> Alcotest.fail m
      | Ok state ->
        let txn' = Txn.create engine in
        let feed' = Feed.create ~state txn' in
        Alcotest.(check string) "state bit-exact" before (Feed.encode_state feed');
        Alcotest.(check int) "bindings restored" (Feed.el_bindings feed) (Feed.el_bindings feed');
        Alcotest.(check int) "entities restored" (Feed.entities_bound feed)
          (Feed.entities_bound feed');
        (* The recovered feed keeps assigning the same ids: stream more
           documents into both and compare. *)
        let more = { cfg with Source.seed = cfg.Source.seed + 1; Source.docs = 6 } in
        ignore (Feed.run feed (Source.synthetic more) (Batcher.create ()));
        ignore (Feed.run feed' (Source.synthetic more) (Batcher.create ()));
        Alcotest.(check string) "continuations agree" (Feed.encode_state feed)
          (Feed.encode_state feed'))
    | Ok None -> Alcotest.fail "canonicalizer blob missing"
    | Error e -> Alcotest.fail (Checkpoint.error_to_string e))

(* --- qcheck properties ----------------------------------------------------- *)

let key_pool = [| "alpha"; "bravo"; "charlie"; "delta"; "echo"; "foxtrot" |]

let qcheck_tests =
  let open QCheck in
  let op =
    Gen.(
      oneof
        [
          map (fun i -> `Observe i) (0 -- (Array.length key_pool - 1));
          map2 (fun i j -> `Alias (i, j)) (0 -- (Array.length key_pool - 1))
            (0 -- (Array.length key_pool - 1));
        ])
  in
  let apply c = function
    | `Observe i -> ignore (Canonicalizer.observe c key_pool.(i))
    | `Alias (i, j) -> if i <> j then ignore (Canonicalizer.declare_alias c key_pool.(i) key_pool.(j))
  in
  [
    Test.make ~name:"canonicalizer members consistent" ~count:300
      (make Gen.(list_size (1 -- 40) op))
      (fun ops ->
        let c = Canonicalizer.create () in
        List.iter (apply c) ops;
        List.for_all
          (fun key ->
            match Canonicalizer.resolve c key with
            | None -> false
            | Some entity ->
              (* Every member of this key's entity resolves to the same id,
                 and the id belongs to the earliest member. *)
              let members = Canonicalizer.members c entity in
              members <> []
              && List.for_all (fun k -> Canonicalizer.resolve c k = Some entity) members
              && entity = "ent:" ^ List.hd members)
          (Canonicalizer.all_keys c));
    Test.make ~name:"canonicalizer encode/decode stable" ~count:200
      (make Gen.(list_size (1 -- 40) op))
      (fun ops ->
        let c = Canonicalizer.create () in
        List.iter (apply c) ops;
        let encoded = Canonicalizer.encode c in
        match Canonicalizer.decode encoded with
        | Error _ -> false
        | Ok c' ->
          Canonicalizer.encode c' = encoded
          && List.for_all
               (fun key -> Canonicalizer.resolve c' key = Canonicalizer.resolve c key)
               (Canonicalizer.all_keys c));
  ]

let () =
  Alcotest.run "dd_ingest"
    [
      ( "source",
        [
          Alcotest.test_case "deterministic" `Quick test_source_deterministic;
          Alcotest.test_case "arrivals increase" `Quick test_source_arrivals_increase;
          Alcotest.test_case "seed changes stream" `Quick test_source_seed_changes_stream;
          Alcotest.test_case "replay corpus" `Quick test_source_replay;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "count trigger" `Quick test_batcher_count_trigger;
          Alcotest.test_case "deadline trigger" `Quick test_batcher_deadline_trigger;
          Alcotest.test_case "due and drain" `Quick test_batcher_due_and_drain;
        ] );
      ( "canonicalizer",
        [
          Alcotest.test_case "case insensitive" `Quick test_canon_observe_case_insensitive;
          Alcotest.test_case "alias before observation" `Quick test_canon_alias_before_observation;
          Alcotest.test_case "late alias merges" `Quick test_canon_late_alias_merges;
          Alcotest.test_case "winner stability" `Quick test_canon_winner_stability;
          Alcotest.test_case "encode roundtrip" `Quick test_canon_encode_roundtrip;
          Alcotest.test_case "decode rejects corruption" `Quick test_canon_decode_rejects_corruption;
        ] );
      ( "feed",
        [
          Alcotest.test_case "merges not forks" `Quick test_feed_merges_not_forks;
          Alcotest.test_case "late alias retracts" `Quick test_feed_late_alias_retracts;
          Alcotest.test_case "state roundtrip" `Quick test_feed_state_roundtrip;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "blob roundtrip" `Quick test_blob_roundtrip;
          Alcotest.test_case "recovery preserves ids" `Quick test_recovery_preserves_canonical_ids;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
