(* Tests for Dd_parallel: partition validity (property-tested), the
   domain pool, and the equivalence contract of the parallel sampler —
   bit-identical to the sequential samplers at [domains = 1], and
   statistically agreeing with them at [domains > 1] on the voting and
   Fig-KBC graphs. *)

module Graph = Dd_fgraph.Graph
module Semantics = Dd_fgraph.Semantics
module Exact = Dd_fgraph.Exact
module Voting = Dd_fgraph.Voting
module Gibbs = Dd_inference.Gibbs
module Fast_gibbs = Dd_inference.Fast_gibbs
module Partition = Dd_parallel.Partition
module Pool = Dd_parallel.Pool
module Range = Dd_parallel.Range
module Par_gibbs = Dd_parallel.Par_gibbs
module Compiled = Dd_inference.Compiled
module Materialize = Dd_core.Materialize
module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Corpus = Dd_kbc.Corpus
module Pipeline = Dd_kbc.Pipeline
module Quality = Dd_kbc.Quality
module Database = Dd_relational.Database
module Prng = Dd_util.Prng
module Stats = Dd_util.Stats

(* A random graph mixing the structures grounding produces: unary biases,
   multi-body implications with negated literals, all three semantics,
   some evidence variables. *)
let random_graph ?(nvars = 12) seed =
  let rng = Prng.create seed in
  let g = Graph.create () in
  let vars = Graph.add_vars g nvars in
  Array.iter
    (fun v ->
      if Prng.bernoulli rng 0.2 then
        Graph.set_evidence g v (Graph.Evidence (Prng.bool rng));
      let w = Graph.add_weight g (Prng.float_range rng (-1.0) 1.0) in
      ignore (Graph.unary g ~weight:w v))
    vars;
  for _ = 1 to nvars do
    let a = Prng.int_below rng nvars and b = Prng.int_below rng nvars in
    if a <> b then begin
      let w = Graph.add_weight g (Prng.float_range rng (-1.0) 1.0) in
      let semantics =
        Prng.choice rng [| Semantics.Linear; Semantics.Logical; Semantics.Ratio |]
      in
      let head = if Prng.bool rng then Some (Prng.int_below rng nvars) else None in
      ignore
        (Graph.add_factor g
           {
             Graph.head;
             bodies =
               [|
                 [| { Graph.var = a; negated = Prng.bool rng } |];
                 [| { Graph.var = a; negated = false }; { Graph.var = b; negated = true } |];
               |];
             weight_id = w;
             semantics;
           })
    end
  done;
  g

(* --- partition --------------------------------------------------------- *)

let test_partition_valid_small () =
  for seed = 0 to 19 do
    let g = random_graph seed in
    match Partition.validate g (Partition.color g) with
    | Ok () -> ()
    | Error m -> Alcotest.failf "seed %d: %s" seed m
  done

let test_partition_covers_queries () =
  let g = random_graph 3 in
  let p = Partition.color g in
  let listed = Array.fold_left (fun acc cls -> acc + Array.length cls) 0 p.Partition.classes in
  Alcotest.(check int) "classes hold exactly the query variables"
    (List.length (Graph.query_vars g))
    listed

let test_partition_deterministic () =
  let g = random_graph 7 in
  let p1 = Partition.color g and p2 = Partition.color g in
  Alcotest.(check bool) "identical colors" true (p1.Partition.colors = p2.Partition.colors)

let test_partition_voting_degenerates () =
  (* All up-votes share one aggregation factor (likewise the down-votes,
     and q sits in both), so the chromatic number collapses to
     [max n_up n_down + 1] — each color class holds at most one up and
     one down vote, the conflict-dense degradation DESIGN.md documents. *)
  let cfg = { Voting.default with Voting.n_up = 12; n_down = 9 } in
  let g, _, _, _ = Voting.build cfg in
  let p = Partition.color g in
  Alcotest.(check int) "max(n_up, n_down) + 1 colors" 13 p.Partition.num_colors;
  Alcotest.(check bool) "still valid" true (Partition.validate g p = Ok ())

let test_partition_rejects_corrupt () =
  let g = random_graph 11 in
  let p = Partition.color g in
  (* Force the first two query variables that share a factor onto one
     color; validate must object. *)
  let colors = Array.copy p.Partition.colors in
  let clash = ref None in
  Graph.iter_factors
    (fun _ f ->
      if !clash = None then
        match List.filter (fun v -> colors.(v) >= 0) (Graph.vars_of_factor f) with
        | a :: b :: _ when colors.(a) <> colors.(b) -> clash := Some (a, b)
        | _ -> ())
    g;
  match !clash with
  | None -> () (* no multi-variable factor in this draw; nothing to corrupt *)
  | Some (a, b) ->
    colors.(b) <- colors.(a);
    let corrupt = { p with Partition.colors } in
    Alcotest.(check bool) "corruption detected" true
      (match Partition.validate g corrupt with Ok () -> false | Error _ -> true)

let test_slices_cover () =
  let g = random_graph 5 in
  let p = Partition.color g in
  let sliced = Partition.slices p ~domains:3 in
  Array.iteri
    (fun c phase ->
      let merged = Array.concat (Array.to_list phase) in
      Alcotest.(check bool)
        (Printf.sprintf "phase %d preserves its class" c)
        true
        (merged = p.Partition.classes.(c)))
    sliced

let partition_qcheck =
  let open QCheck in
  [
    Test.make ~name:"greedy coloring is always valid" ~count:60
      (pair small_int (int_range 1 30))
      (fun (seed, nvars) ->
        let g = random_graph ~nvars seed in
        Partition.validate g (Partition.color g) = Ok ());
    Test.make ~name:"slices preserve classes for any domain count" ~count:40
      (pair small_int (int_range 1 9))
      (fun (seed, domains) ->
        let g = random_graph seed in
        let p = Partition.color g in
        Array.for_all2
          (fun phase cls -> Array.concat (Array.to_list phase) = cls)
          (Partition.slices p ~domains)
          p.Partition.classes);
  ]

(* --- pool -------------------------------------------------------------- *)

let test_pool_runs_all_indices () =
  let pool = Pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let hits = Array.make 4 0 in
      (* Reuse across batches is the whole point: same pool, many runs. *)
      for _ = 1 to 50 do
        Pool.run pool (fun d -> hits.(d) <- hits.(d) + 1)
      done;
      Alcotest.(check (array int)) "every index ran every batch" (Array.make 4 50) hits)

let test_pool_propagates_exception () =
  let pool = Pool.create 3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let raised =
        match Pool.run pool (fun d -> if d = 1 then failwith "worker boom") with
        | () -> false
        | exception Failure m -> m = "worker boom"
      in
      Alcotest.(check bool) "worker exception re-raised" true raised;
      (* The pool survives a failed batch. *)
      let ok = ref 0 in
      Pool.run pool (fun _ -> incr ok);
      Alcotest.(check bool) "usable after failure" true (!ok >= 1))

let test_pool_shutdown_idempotent () =
  let pool = Pool.create 2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.(check bool) "run after shutdown rejected" true
    (match Pool.run pool (fun _ -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- par_gibbs: domains = 1 is bit-exact ------------------------------- *)

let test_seq_marginals_bit_identical () =
  for seed = 0 to 4 do
    let g = random_graph seed in
    let a = Par_gibbs.marginals ~burn_in:15 ~domains:1 (Prng.create (50 + seed)) g ~sweeps:80 in
    let b = Fast_gibbs.marginals ~burn_in:15 (Prng.create (50 + seed)) g ~sweeps:80 in
    Alcotest.(check bool) (Printf.sprintf "seed %d identical" seed) true (a = b)
  done

let test_seq_sample_worlds_bit_identical () =
  let g = random_graph 9 in
  let a = Par_gibbs.sample_worlds ~burn_in:10 ~domains:1 (Prng.create 60) g ~n:25 in
  let b = Gibbs.sample_worlds ~burn_in:10 (Prng.create 60) g ~n:25 in
  Alcotest.(check bool) "identical worlds" true (a = b)

let test_seq_materialize_bit_identical () =
  (* The engine's default path must not move: materialize with the
     [domains] argument at 1 equals the historical sequential draw. *)
  let g = random_graph 13 in
  let a = (Materialize.materialize ~n_samples:40 ~with_variational:false (Prng.create 61) g).Materialize.samples in
  let b = Gibbs.sample_worlds ~burn_in:20 (Prng.create 61) g ~n:40 in
  Alcotest.(check bool) "identical sample store" true (a = b)

(* --- par_gibbs: domains > 1 ------------------------------------------- *)

let test_par_reproducible () =
  let g = random_graph 21 in
  let run () = Par_gibbs.marginals ~burn_in:10 ~domains:3 (Prng.create 70) g ~sweeps:60 in
  Alcotest.(check bool) "same seed, same domains -> identical" true (run () = run ())

let test_par_sample_worlds_shape () =
  let g = random_graph 22 in
  let worlds = Par_gibbs.sample_worlds ~burn_in:5 ~domains:3 (Prng.create 71) g ~n:20 in
  Alcotest.(check int) "n worlds" 20 (Array.length worlds);
  Array.iter
    (fun w -> Alcotest.(check int) "width" (Graph.num_vars g) (Array.length w))
    worlds;
  (* Evidence variables hold their clamped value in every chain's worlds. *)
  Array.iter
    (fun w ->
      for v = 0 to Graph.num_vars g - 1 do
        match Graph.evidence_of g v with
        | Graph.Evidence b -> Alcotest.(check bool) "evidence clamped" b w.(v)
        | Graph.Query -> ()
      done)
    worlds

let test_par_marginals_match_exact () =
  (* Color-synchronous sweeps sample the same distribution: compare to
     exact marginals on an enumerable graph. *)
  let g = random_graph ~nvars:8 2 in
  let m = Par_gibbs.marginals ~burn_in:100 ~domains:3 (Prng.create 72) g ~sweeps:12_000 in
  let exact = Exact.marginals g in
  Alcotest.(check bool) "within 4%" true (Stats.max_abs_diff m exact < 0.04)

let test_chain_marginals_match_exact () =
  let g = random_graph ~nvars:8 4 in
  let m = Par_gibbs.chain_marginals ~burn_in:100 ~domains:4 (Prng.create 73) g ~sweeps:4000 in
  let exact = Exact.marginals g in
  Alcotest.(check bool) "within 4%" true (Stats.max_abs_diff m exact < 0.04)

let test_par_voting_agrees () =
  (* The voting aggregation factor degrades the partition to singleton
     classes (sequential inline execution) — the sampler must stay
     correct there. *)
  let cfg = { Voting.default with Voting.n_up = 25; n_down = 18 } in
  let g, q, _, _ = Voting.build cfg in
  let exact = Voting.exact_marginal_q cfg in
  let m = Par_gibbs.marginals ~burn_in:200 ~domains:4 (Prng.create 74) g ~sweeps:8000 in
  Alcotest.(check bool) "q marginal within 5%" true (abs_float (m.(q) -. exact) < 0.05)

(* --- budget polling inside worker slices -------------------------------- *)

(* A unary-only graph: one color class, so every sweep is exactly one
   parallel phase whose [domains] slices all carry work.  Poll counts are
   then a pure function of the shapes: 1 coordinator poll per phase plus
   [ceil (slice / 128)] polls per worker slice — deterministic no matter
   how the domains interleave, because the tick counter is atomic. *)
let unary_graph n =
  let g = Graph.create () in
  Array.iter
    (fun v ->
      let w = Graph.add_weight g 0.3 in
      ignore (Graph.unary g ~weight:w v))
    (Graph.add_vars g n);
  g

let test_budgeted_worker_slices () =
  let module Budget = Dd_util.Budget in
  let g = unary_graph 600 in
  let run budget =
    Par_gibbs.marginals ?budget ~burn_in:1 ~domains:3 (Prng.create 90) g ~sweeps:5
  in
  (* 6 sweeps x (1 phase poll + 3 slices x 2 chunk polls) = 42 ticks. *)
  let free = run None in
  let exact = run (Some (Budget.start (Budget.Ticks 42))) in
  Alcotest.(check bool) "budgeted sweep is bit-identical" true (free = exact);
  (* One tick short: the very last poll — inside a worker slice, not on
     the coordinator — must raise, and from the worker's own site. *)
  match run (Some (Budget.start (Budget.Ticks 41))) with
  | _ -> Alcotest.fail "expected Budget.Exceeded from a worker slice"
  | exception Budget.Exceeded site -> Alcotest.(check string) "worker site" "par_gibbs.slice" site

(* --- Fig-KBC agreement (the recovery harness comparators) -------------- *)

let tiny_news =
  {
    Dd_kbc.Systems.news with
    Corpus.docs = 40;
    entities = 30;
    truth_pairs_per_relation = 6;
  }

let test_par_fig_kbc_agreement () =
  let corpus = Corpus.generate tiny_news in
  let db = Database.create () in
  Corpus.load corpus db;
  let grounding = Grounding.ground db (Pipeline.full_program ()) in
  let g = Grounding.graph grounding in
  Dd_inference.Learner.train_cd
    ~options:{ Dd_inference.Learner.default_cd with Dd_inference.Learner.epochs = 10 }
    (Prng.create 80) g;
  let sweeps = 2500 in
  let seq = Fast_gibbs.marginals ~burn_in:50 (Prng.create 81) g ~sweeps in
  let par = Par_gibbs.marginals ~burn_in:50 ~domains:3 (Prng.create 81) g ~sweeps in
  let agreement =
    Quality.compare_marginals
      (Grounding.marginals_by_relation grounding par)
      (Grounding.marginals_by_relation grounding seq)
  in
  if agreement.Quality.high_conf_jaccard < 0.8 then
    Alcotest.failf "high-confidence Jaccard %.3f < 0.8" agreement.Quality.high_conf_jaccard;
  if agreement.Quality.frac_diff_gt > 0.1 then
    Alcotest.failf "%.1f%% of tuples differ by > 0.05" (100.0 *. agreement.Quality.frac_diff_gt);
  if agreement.Quality.max_diff > 0.15 then
    Alcotest.failf "max marginal difference %.3f > 0.15" agreement.Quality.max_diff

(* --- async mode --------------------------------------------------------- *)

(* The exactly-once contract of a sweep, for both schedulers: the
   color-sync slices (above, [test_slices_cover]) and the async range
   plan.  [Range.spans] must tile [0, n) with contiguous, disjoint,
   ascending spans for any worker count and any cost skew. *)
let range_qcheck =
  let open QCheck in
  let tiles n workers cost =
    let spans = Range.spans ~cost ~workers n in
    Array.length spans = workers
    && Range.total_length spans = n
    && (n = 0
       || (spans.(0).Range.lo = 0
          && spans.(workers - 1).Range.hi = n
          && Array.for_all (fun s -> s.Range.lo <= s.Range.hi) spans
          &&
          let ok = ref true in
          for i = 0 to workers - 2 do
            ok := !ok && spans.(i).Range.hi = spans.(i + 1).Range.lo
          done;
          !ok))
  in
  [
    Test.make ~name:"range spans tile [0,n) for any cost skew" ~count:80
      (triple (int_range 0 300) (int_range 1 12) small_int)
      (fun (n, workers, salt) ->
        tiles n workers (fun i -> (i * (salt + 3)) mod 17) && tiles n workers (fun _ -> 1));
    Test.make ~name:"async plan visits every query variable exactly once per sweep" ~count:30
      (pair small_int (int_range 1 9))
      (fun (seed, workers) ->
        let g = random_graph seed in
        let kernel = Compiled.compile g in
        let query = Compiled.query_vars kernel in
        let spans =
          Range.spans
            ~cost:(fun i -> Compiled.async_cost kernel query.(i))
            ~workers (Array.length query)
        in
        let visits = Array.make (Array.length query) 0 in
        Array.iter
          (fun s ->
            for i = s.Range.lo to s.Range.hi - 1 do
              visits.(i) <- visits.(i) + 1
            done)
          spans;
        Array.for_all (fun c -> c = 1) visits);
  ]

(* Async with one worker keeps the caller's PRNG stream and recomputes
   exactly the counter-derived conditional, so its trajectory is
   bit-identical to the sequential compiled sweep — over graphs mixing
   evidence, negated literals, multi-body factors and all semantics. *)
let test_async_bit_exact_vs_sequential () =
  List.iter
    (fun seed ->
      let g = random_graph ~nvars:40 seed in
      let seq = Par_gibbs.create ~domains:1 (Prng.create 7) g in
      let asy = Par_gibbs.create ~mode:Par_gibbs.Async ~domains:1 (Prng.create 7) g in
      for _ = 1 to 5 do
        Par_gibbs.sweep seq;
        Par_gibbs.sweep asy
      done;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d identical" seed)
        true
        (Par_gibbs.assignment seq = Par_gibbs.assignment asy);
      Par_gibbs.shutdown seq;
      Par_gibbs.shutdown asy)
    [ 1; 5; 17 ]

(* Split worker streams + deterministic block multiplexing: a fixed seed
   reproduces the async trajectory exactly whenever a single hardware
   slot executes — domains = 1, or many logical workers on a pool of
   size 1. *)
let test_async_fixed_seed_deterministic () =
  let g = random_graph ~nvars:30 31 in
  let run_1d () =
    Par_gibbs.marginals ~mode:Par_gibbs.Async ~epoch_sweeps:4 ~burn_in:20 ~domains:1
      (Prng.create 55) g ~sweeps:200
  in
  Alcotest.(check bool) "domains = 1 trajectories identical" true (run_1d () = run_1d ());
  let pool = Pool.create 1 in
  let run_4w () =
    let t = Par_gibbs.create ~mode:Par_gibbs.Async ~pool ~domains:4 (Prng.create 56) g in
    Alcotest.(check int) "async has one phase" 1 (Par_gibbs.phases t);
    Par_gibbs.sweep_epoch t ~sweeps:6;
    Par_gibbs.shutdown t;
    Par_gibbs.assignment t
  in
  Alcotest.(check bool) "4 workers on 1 slot reproduce" true (run_4w () = run_4w ());
  Pool.shutdown pool

let test_async_marginals_match_exact () =
  let g = random_graph ~nvars:8 2 in
  let exact = Exact.marginals g in
  let m =
    Par_gibbs.marginals ~mode:Par_gibbs.Async ~epoch_sweeps:8 ~burn_in:300 ~domains:3
      (Prng.create 61) g ~sweeps:12000
  in
  Alcotest.(check bool) "within 4%" true (Stats.max_abs_diff m exact < 0.04)

(* Short statistical-equivalence tier: async vs color-sync on a second
   enumerable graph — the two schedulers must answer with the same
   posterior even though their trajectories differ. *)
let test_async_agrees_with_colorsync () =
  let g = random_graph ~nvars:9 44 in
  let sweeps = 10000 in
  let asy =
    Par_gibbs.marginals ~mode:Par_gibbs.Async ~epoch_sweeps:8 ~burn_in:300 ~domains:3
      (Prng.create 62) g ~sweeps
  in
  let sync = Par_gibbs.marginals ~burn_in:300 ~domains:3 (Prng.create 63) g ~sweeps in
  Alcotest.(check bool) "within 5%" true (Stats.max_abs_diff asy sync < 0.05)

(* [Pool.run ~limit] must wake only the leading workers — the parked
   tail of an oversized shared pool stays asleep. *)
let test_pool_run_limit () =
  let pool = Pool.create 4 in
  let hits = Array.make 4 0 in
  Pool.run ~limit:2 pool (fun d -> hits.(d) <- hits.(d) + 1);
  Alcotest.(check (array int)) "only workers < limit ran" [| 1; 1; 0; 0 |] hits;
  Pool.run pool (fun d -> hits.(d) <- hits.(d) + 1);
  Alcotest.(check (array int)) "full run still works" [| 2; 2; 1; 1 |] hits;
  Alcotest.(check bool) "limit 0 rejected" true
    (match Pool.run ~limit:0 pool (fun _ -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "limit > size rejected" true
    (match Pool.run ~limit:5 pool (fun _ -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true);
  Pool.shutdown pool

(* Budget polling inside free-running ranges.  On a pool of size 1 the
   poll count is a pure function of the shapes: 600 unary query vars
   split 200/200/200, chunk size 128 -> 2 polls per worker sweep; one
   epoch of 2 sweeps = 1 coordinator poll + 3 x 2 x 2 worker polls =
   13 ticks.  Exactly enough is bit-identical to free-running; one tick
   short raises from the worker site and leaves the bytes whole. *)
let test_async_budget_ticks () =
  let module Budget = Dd_util.Budget in
  let g = unary_graph 600 in
  let pool = Pool.create 1 in
  let epoch budget =
    let t = Par_gibbs.create ~mode:Par_gibbs.Async ~pool ~domains:3 (Prng.create 90) g in
    Fun.protect
      ~finally:(fun () -> Par_gibbs.shutdown t)
      (fun () ->
        Par_gibbs.sweep_epoch ?budget t ~sweeps:2;
        Par_gibbs.assignment t)
  in
  let free = epoch None in
  let exact = epoch (Some (Budget.start (Budget.Ticks 13))) in
  Alcotest.(check bool) "budgeted epoch is bit-identical" true (free = exact);
  (match epoch (Some (Budget.start (Budget.Ticks 12))) with
  | _ -> Alcotest.fail "expected Budget.Exceeded from an async range"
  | exception Budget.Exceeded site ->
    Alcotest.(check string) "async range site" "par_gibbs.async_range" site);
  (* After a worker-side abort the sampler state stays usable: bytes are
     whole and the stale counters rebuild on demand. *)
  let t = Par_gibbs.create ~mode:Par_gibbs.Async ~pool ~domains:3 (Prng.create 91) g in
  (try Par_gibbs.sweep_epoch ~budget:(Budget.start (Budget.Ticks 5)) t ~sweeps:2
   with Budget.Exceeded _ -> ());
  Par_gibbs.resync t;
  Par_gibbs.sweep_epoch t ~sweeps:1;
  Alcotest.(check int) "assignment whole after abort" 600
    (Array.length (Par_gibbs.assignment t));
  Par_gibbs.shutdown t;
  Pool.shutdown pool

let test_engine_async_smoke () =
  (* End-to-end: both lesions force the full-Gibbs fallback, and
     [gibbs_mode = Async] routes it through the free-running sampler. *)
  let corpus = Corpus.generate tiny_news in
  let db = Database.create () in
  Corpus.load corpus db;
  let options =
    {
      Engine.default_options with
      Engine.materialization_samples = 40;
      inference_chain = 60;
      initial_learning_epochs = 5;
      with_variational = false;
      disable_sampling = true;
      disable_variational = true;
      parallel_domains = 2;
      gibbs_mode = Par_gibbs.Async;
    }
  in
  let engine = Engine.create ~options db (Pipeline.base_program ()) in
  let report = Engine.apply_update engine (Grounding.rules_update []) in
  Alcotest.(check string) "full gibbs" "full-gibbs"
    (Engine.strategy_used_to_string report.Engine.strategy);
  Array.iter
    (fun m ->
      Alcotest.(check bool) "marginal in [0,1]" true (m >= 0.0 && m <= 1.0))
    (Engine.marginals engine)

let test_engine_parallel_smoke () =
  (* End-to-end: an engine configured with parallel_domains > 1
     materializes through parallel chains and stays numerically sane. *)
  let corpus = Corpus.generate tiny_news in
  let db = Database.create () in
  Corpus.load corpus db;
  let options =
    {
      Engine.default_options with
      Engine.materialization_samples = 60;
      inference_chain = 40;
      initial_learning_epochs = 5;
      with_variational = false;
      parallel_domains = 3;
    }
  in
  let engine = Engine.create ~options db (Pipeline.base_program ()) in
  let mat = Engine.materialization engine in
  Alcotest.(check int) "sample store filled" 60 (Array.length mat.Materialize.samples);
  Array.iter
    (fun m ->
      Alcotest.(check bool) "marginal in [0,1]" true (m >= 0.0 && m <= 1.0))
    (Engine.marginals engine)

let () =
  Alcotest.run "dd_parallel"
    [
      ( "partition",
        [
          Alcotest.test_case "valid on random graphs" `Quick test_partition_valid_small;
          Alcotest.test_case "covers query variables" `Quick test_partition_covers_queries;
          Alcotest.test_case "deterministic" `Quick test_partition_deterministic;
          Alcotest.test_case "voting degenerates to singletons" `Quick
            test_partition_voting_degenerates;
          Alcotest.test_case "validator rejects corruption" `Quick test_partition_rejects_corrupt;
          Alcotest.test_case "slices cover classes" `Quick test_slices_cover;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs all indices, reusable" `Quick test_pool_runs_all_indices;
          Alcotest.test_case "propagates exceptions" `Quick test_pool_propagates_exception;
          Alcotest.test_case "shutdown idempotent" `Quick test_pool_shutdown_idempotent;
          Alcotest.test_case "limit wakes only leading workers" `Quick test_pool_run_limit;
        ] );
      ( "sequential equivalence",
        [
          Alcotest.test_case "marginals bit-identical" `Quick test_seq_marginals_bit_identical;
          Alcotest.test_case "sample worlds bit-identical" `Quick
            test_seq_sample_worlds_bit_identical;
          Alcotest.test_case "materialize bit-identical" `Quick test_seq_materialize_bit_identical;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "deterministic per (seed, domains)" `Quick test_par_reproducible;
          Alcotest.test_case "sample worlds shape + evidence" `Quick test_par_sample_worlds_shape;
          Alcotest.test_case "marginals vs exact" `Slow test_par_marginals_match_exact;
          Alcotest.test_case "chain marginals vs exact" `Slow test_chain_marginals_match_exact;
          Alcotest.test_case "voting graph agrees" `Slow test_par_voting_agrees;
          Alcotest.test_case "fig-kbc agreement (jaccard/maxdiff)" `Slow
            test_par_fig_kbc_agreement;
          Alcotest.test_case "engine smoke with parallel_domains" `Quick
            test_engine_parallel_smoke;
          Alcotest.test_case "budget polled inside worker slices" `Quick
            test_budgeted_worker_slices;
        ] );
      ( "async",
        [
          Alcotest.test_case "bit-exact vs sequential at 1 worker" `Quick
            test_async_bit_exact_vs_sequential;
          Alcotest.test_case "fixed seed reproduces trajectories" `Quick
            test_async_fixed_seed_deterministic;
          Alcotest.test_case "marginals vs exact" `Slow test_async_marginals_match_exact;
          Alcotest.test_case "agrees with color-sync" `Slow test_async_agrees_with_colorsync;
          Alcotest.test_case "budget polled inside ranges" `Quick test_async_budget_ticks;
          Alcotest.test_case "engine smoke with gibbs_mode async" `Quick
            test_engine_async_smoke;
        ] );
      ("partition properties", List.map QCheck_alcotest.to_alcotest partition_qcheck);
      ("range properties", List.map QCheck_alcotest.to_alcotest range_qcheck);
    ]
