(* Tests for Dd_datalog.Plan: compiled join plans must be count-exact
   against the legacy interpreted Matcher on arbitrary rules and databases
   (including negation, constants, repeated variables, guards, and empty
   relations), Patched views must behave like materialized snapshots, and
   DRed through compiled delta plans must match from-scratch evaluation on
   insert / delete / rederive scenarios. *)

module Value = Dd_relational.Value
module Schema = Dd_relational.Schema
module Tuple = Dd_relational.Tuple
module Relation = Dd_relational.Relation
module Database = Dd_relational.Database
module Ast = Dd_datalog.Ast
module Matcher = Dd_datalog.Matcher
module Engine = Dd_datalog.Engine
module Dred = Dd_datalog.Dred
module Plan = Dd_datalog.Plan

let i = Value.int
let v name = Ast.Var name
let c value = Ast.Const value
let atom = Ast.atom

(* --- helpers ---------------------------------------------------------------- *)

let schema_of_arity n =
  Schema.make (List.init n (fun k -> (Printf.sprintf "c%d" k, Value.TInt)))

(* Fixed EDB vocabulary: predicate name -> arity. *)
let preds = [ ("e1", 1); ("e2", 2); ("f2", 2); ("g3", 3) ]

let arity_of pred = List.assoc pred preds

let make_db ?backend contents =
  let db = Database.create ?backend () in
  List.iter
    (fun (pred, arity) -> ignore (Database.create_table db pred (schema_of_arity arity)))
    preds;
  List.iter
    (fun (pred, tuple, count) -> Relation.insert ~count (Database.find db pred) tuple)
    contents;
  db

let sorted_counted l = List.sort compare (List.map (fun (t, n) -> (Array.to_list t, n)) l)

let materialize_env rule env =
  List.map (fun var -> (var, env var)) (List.sort_uniq compare (Ast.rule_vars rule))

let sorted_envs rule envs = List.sort compare (List.map (materialize_env rule) envs)

let sorted_counted_envs rule envs =
  List.sort compare (List.map (fun (env, n) -> (materialize_env rule env, n)) envs)

(* --- unit: compile shape ----------------------------------------------------- *)

let test_order_prefers_bound () =
  (* g3 shares x with the head; e2(x,y) must run before f2(z,w) once x,y
     are bound... with nothing bound yet the heuristic picks the literal
     with a constant first. *)
  let rule =
    Ast.rule
      (atom "p" [ v "x" ])
      [
        Ast.Pos (atom "f2" [ v "z"; v "w" ]);
        Ast.Pos (atom "e2" [ v "x"; c (i 7) ]);
        Ast.Pos (atom "g3" [ v "x"; v "z"; v "y" ]);
      ]
  in
  let plan = Plan.compile rule in
  Alcotest.(check int) "starts at constant literal" 1 (List.hd (Plan.literal_order plan));
  Alcotest.(check int) "full plan" (-1) (Plan.delta_pos plan)

let test_delta_plan_starts_at_delta () =
  let rule =
    Ast.rule
      (atom "p" [ v "x"; v "z" ])
      [ Ast.Pos (atom "e2" [ v "x"; v "y" ]); Ast.Pos (atom "f2" [ v "y"; v "z" ]) ]
  in
  let plan = Plan.compile_delta rule ~delta_pos:1 in
  Alcotest.(check int) "delta literal first" 1 (List.hd (Plan.literal_order plan));
  Alcotest.(check int) "delta pos recorded" 1 (Plan.delta_pos plan)

let test_cache_reuses_plans () =
  let rule =
    Ast.rule (atom "p" [ v "x" ]) [ Ast.Pos (atom "e2" [ v "x"; v "y" ]) ]
  in
  let cache = Plan.Cache.create () in
  let p1 = Plan.Cache.full cache rule in
  let p2 = Plan.Cache.full cache rule in
  Alcotest.(check bool) "same plan" true (p1 == p2);
  ignore (Plan.Cache.delta cache rule ~delta_pos:0);
  ignore (Plan.Cache.delta cache rule ~delta_pos:0);
  Alcotest.(check int) "two compilations" 2 (Plan.Cache.compiles cache);
  Alcotest.(check int) "two cached plans" 2 (Plan.Cache.size cache)

let test_run_rejects_wrong_mode () =
  let rule =
    Ast.rule (atom "p" [ v "x" ]) [ Ast.Pos (atom "e2" [ v "x"; v "y" ]) ]
  in
  let lookup = Plan.view_of_lookup (fun _ -> Matcher.empty_relation) in
  Alcotest.check_raises "run on delta plan"
    (Invalid_argument "Plan.run: delta plan (use run_staged)") (fun () ->
      ignore (Plan.run (Plan.compile_delta rule ~delta_pos:0) ~lookup));
  Alcotest.check_raises "run_staged on full plan"
    (Invalid_argument "Plan.run_staged: full plan (use run)") (fun () ->
      ignore (Plan.run_staged (Plan.compile rule) ~before:lookup ~after:lookup ~delta:[]))

(* --- unit: patched views ------------------------------------------------------ *)

let test_view_mem_patched () =
  let base = Relation.of_list (schema_of_arity 1) [ [| i 1 |]; [| i 2 |] ] in
  let minus = Tuple.Hashtbl.create 4 and plus = Tuple.Hashtbl.create 4 in
  Tuple.Hashtbl.replace minus [| i 2 |] ();
  Tuple.Hashtbl.replace plus [| i 9 |] ();
  let view = Plan.patched ~base ~minus ~plus in
  Alcotest.(check bool) "kept" true (Plan.view_mem view [| i 1 |]);
  Alcotest.(check bool) "hidden" false (Plan.view_mem view [| i 2 |]);
  Alcotest.(check bool) "added" true (Plan.view_mem view [| i 9 |]);
  Alcotest.(check bool) "absent" false (Plan.view_mem view [| i 5 |])

let test_patched_view_equals_materialized () =
  (* A join against a Patched view must equal the same join against the
     materialized old relation. *)
  let rule =
    Ast.rule
      (atom "p" [ v "x"; v "z" ])
      [ Ast.Pos (atom "e2" [ v "x"; v "y" ]); Ast.Pos (atom "f2" [ v "y"; v "z" ]) ]
  in
  let db =
    make_db
      [
        ("e2", [| i 1; i 2 |], 1);
        ("e2", [| i 2; i 2 |], 1);
        ("f2", [| i 2; i 3 |], 1);
        ("f2", [| i 2; i 4 |], 1);
      ]
  in
  (* Old state of f2: drop (2,3), add (5,6). *)
  let minus = Tuple.Hashtbl.create 4 and plus = Tuple.Hashtbl.create 4 in
  Tuple.Hashtbl.replace minus [| i 2; i 3 |] ();
  Tuple.Hashtbl.replace plus [| i 5; i 6 |] ();
  let patched_lookup pred =
    if pred = "f2" then Plan.patched ~base:(Database.find db "f2") ~minus ~plus
    else Plan.whole (Engine.lookup_in db pred)
  in
  let old_f2 = Relation.of_list (schema_of_arity 2) [ [| i 2; i 4 |]; [| i 5; i 6 |] ] in
  let materialized_lookup pred =
    if pred = "f2" then old_f2 else Engine.lookup_in db pred
  in
  let via_view = Plan.run (Plan.compile rule) ~lookup:patched_lookup in
  let via_copy = Matcher.eval_rule ~lookup:materialized_lookup rule in
  Alcotest.(check bool) "same result" true
    (sorted_counted via_view = sorted_counted via_copy)

(* --- qcheck: planned execution vs legacy matcher ------------------------------ *)

(* Random safe rules over the fixed vocabulary: 1-3 positive literals with
   variables (repetition likely) and constants, an optional negation and an
   optional guard over bound variables, a head over bound variables. *)
let rule_gen =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "z"; "w" ] in
  let const = map i (0 -- 3) in
  let term = frequency [ (3, map v var); (1, map c const) ] in
  let pred_gen = oneofl (List.map fst preds) in
  let atom_for pred = map (fun args -> atom pred args) (list_repeat (arity_of pred) term) in
  let pos_atom = pred_gen >>= atom_for in
  let* body_atoms = list_size (1 -- 3) pos_atom in
  let bound =
    List.sort_uniq compare (List.concat_map Ast.atom_vars body_atoms)
  in
  let bound_term =
    match bound with
    | [] -> map c const
    | _ -> frequency [ (3, map v (oneofl bound)); (1, map c const) ]
  in
  let* negated =
    frequency
      [
        (2, return []);
        ( 1,
          let* pred = pred_gen in
          map
            (fun args -> [ Ast.Neg (atom pred args) ])
            (list_repeat (arity_of pred) bound_term) );
      ]
  in
  let* guards =
    frequency
      [
        (2, return []);
        ( 1,
          let* a = bound_term and* b = bound_term in
          oneofl [ [ Ast.Neq (a, b) ]; [ Ast.Lt (a, b) ]; [ Ast.Eq (a, b) ]; [ Ast.Le (a, b) ] ]
        );
      ]
  in
  let* head_args = list_size (1 -- 2) bound_term in
  let* ngap = 0 -- List.length body_atoms in
  let body =
    (* Splice the negation somewhere into the positive body so delta
       positions can land on either polarity. *)
    let positives = List.map (fun a -> Ast.Pos a) body_atoms in
    let before = List.filteri (fun k _ -> k < ngap) positives in
    let after = List.filteri (fun k _ -> k >= ngap) positives in
    before @ negated @ after
  in
  return (Ast.rule ~guards (atom "h" head_args) body)

let db_gen =
  let open QCheck.Gen in
  let tuple_for pred = map Array.of_list (list_repeat (arity_of pred) (map i (0 -- 3))) in
  let entry =
    let* pred = oneofl (List.map fst preds) in
    let* tuple = tuple_for pred in
    let* count = 1 -- 2 in
    return (pred, tuple, count)
  in
  list_size (0 -- 25) entry

let print_scenario (rule, contents) =
  Printf.sprintf "rule: %s\ndb: %s" (Ast.rule_to_string rule)
    (String.concat "; "
       (List.map
          (fun (p, t, n) -> Printf.sprintf "%s%s*%d" p (Tuple.to_string t) n)
          contents))

let full_equiv_arb =
  QCheck.make ~print:print_scenario QCheck.Gen.(pair rule_gen db_gen)

let check_full_equivalence (rule, contents) =
  let db = make_db contents in
  let lookup = Engine.lookup_in db in
  let legacy = Matcher.eval_rule ~lookup rule in
  let planned = Plan.run (Plan.compile rule) ~lookup:(Plan.view_of_lookup lookup) in
  let envs_legacy = Matcher.eval_rule_bindings ~lookup rule in
  let envs_planned =
    Plan.run_bindings (Plan.compile rule) ~lookup:(Plan.view_of_lookup lookup)
  in
  sorted_counted legacy = sorted_counted planned
  && sorted_envs rule envs_legacy = sorted_envs rule envs_planned

(* Staged: arbitrary before/after databases and an arbitrary signed delta
   (with some wrong-arity tuples both paths must ignore) at every body
   position of the rule. *)
let staged_gen =
  let open QCheck.Gen in
  let* rule = rule_gen in
  let* before_db = db_gen in
  let* after_db = db_gen in
  let npos = List.length rule.Ast.body in
  let* delta_pos = 0 -- (npos - 1) in
  let pred = (Ast.atom_of_literal (List.nth rule.Ast.body delta_pos)).Ast.pred in
  let delta_entry =
    let* arity = frequency [ (6, return (arity_of pred)); (1, 0 -- 3) ] in
    let* tuple = map Array.of_list (list_repeat arity (map i (0 -- 3))) in
    let* sign = oneofl [ 1; -1; 2; -2 ] in
    return (tuple, sign)
  in
  let* delta = list_size (0 -- 6) delta_entry in
  return (rule, before_db, after_db, delta_pos, delta)

let staged_arb =
  QCheck.make
    ~print:(fun (rule, bdb, adb, pos, delta) ->
      Printf.sprintf "%s\npos=%d delta=%s\nbefore=%d entries after=%d entries"
        (Ast.rule_to_string rule) pos
        (String.concat ";"
           (List.map (fun (t, s) -> Printf.sprintf "%s%+d" (Tuple.to_string t) s) delta))
        (List.length bdb) (List.length adb))
    staged_gen

let check_staged_equivalence (rule, before_contents, after_contents, delta_pos, delta) =
  let before_db = make_db before_contents and after_db = make_db after_contents in
  let before = Engine.lookup_in before_db and after = Engine.lookup_in after_db in
  let legacy = Matcher.eval_rule_staged ~before ~after ~delta_pos ~delta rule in
  let plan = Plan.compile_delta rule ~delta_pos in
  let planned =
    Plan.run_staged plan ~before:(Plan.view_of_lookup before)
      ~after:(Plan.view_of_lookup after) ~delta
  in
  let envs_legacy = Matcher.eval_rule_bindings_staged ~before ~after ~delta_pos ~delta rule in
  let envs_planned =
    Plan.run_bindings_staged plan ~before:(Plan.view_of_lookup before)
      ~after:(Plan.view_of_lookup after) ~delta
  in
  sorted_counted legacy = sorted_counted planned
  && sorted_counted_envs rule envs_legacy = sorted_counted_envs rule envs_planned

(* --- qcheck: columnar backend equivalence ------------------------------------- *)

module Column_store = Dd_relational.Column_store

(* Same plan, two storage backends: results must agree tuple-for-tuple and
   count-for-count. *)
let check_backend_full_equivalence (rule, contents) =
  let row_db = make_db contents in
  let col_db = make_db ~backend:Relation.Columnar contents in
  let run db =
    let lookup = Engine.lookup_in db in
    ( sorted_counted (Plan.run (Plan.compile rule) ~lookup:(Plan.view_of_lookup lookup)),
      sorted_envs rule
        (Plan.run_bindings (Plan.compile rule) ~lookup:(Plan.view_of_lookup lookup)) )
  in
  run row_db = run col_db

let check_backend_staged_equivalence (rule, before_contents, after_contents, delta_pos, delta)
    =
  let run backend =
    let before_db = make_db ?backend before_contents
    and after_db = make_db ?backend after_contents in
    let before = Engine.lookup_in before_db and after = Engine.lookup_in after_db in
    let plan = Plan.compile_delta rule ~delta_pos in
    ( sorted_counted
        (Plan.run_staged plan ~before:(Plan.view_of_lookup before)
           ~after:(Plan.view_of_lookup after) ~delta),
      sorted_counted_envs rule
        (Plan.run_bindings_staged plan ~before:(Plan.view_of_lookup before)
           ~after:(Plan.view_of_lookup after) ~delta) )
  in
  run None = run (Some Relation.Columnar)

(* Random mutation programs applied to both backends: contents must stay
   identical through inserts, counted removals, restore_count, delete_all,
   and an explicit compaction, and both stores must self-validate. *)
let ops_gen =
  let open QCheck.Gen in
  let tuple = map (fun (a, b) -> [| i a; i b |]) (pair (0 -- 5) (0 -- 5)) in
  let op =
    let* t = tuple in
    frequency
      [
        (4, map (fun c -> `Insert (t, c)) (1 -- 3));
        (3, map (fun c -> `Remove (t, c)) (1 -- 3));
        (1, map (fun c -> `Restore (t, c)) (0 -- 3));
        (1, return (`Delete_all t));
      ]
  in
  list_size (0 -- 80) op

let print_ops ops =
  String.concat "; "
    (List.map
       (function
         | `Insert (t, c) -> Printf.sprintf "ins %s*%d" (Tuple.to_string t) c
         | `Remove (t, c) -> Printf.sprintf "rem %s*%d" (Tuple.to_string t) c
         | `Restore (t, c) -> Printf.sprintf "res %s=%d" (Tuple.to_string t) c
         | `Delete_all t -> Printf.sprintf "del %s" (Tuple.to_string t))
       ops)

let ops_arb = QCheck.make ~print:print_ops ops_gen

let check_ops_equivalence ops =
  let schema = schema_of_arity 2 in
  let row = Relation.create ~name:"r" schema in
  let col = Relation.create ~backend:Relation.Columnar ~name:"r" schema in
  let apply r = function
    | `Insert (t, c) -> Relation.insert ~count:c r t
    | `Remove (t, c) -> ignore (Relation.remove ~count:c r t)
    | `Restore (t, c) -> Relation.restore_count r t c
    | `Delete_all t -> Relation.delete_all r t
  in
  List.iter (fun op -> apply row op; apply col op) ops;
  let cs = Option.get (Relation.columnar col) in
  Relation.equal_contents row col
  && Relation.total_count row = Relation.total_count col
  && Result.is_ok (Relation.validate col)
  && begin
       Column_store.compact cs;
       Relation.equal_contents row col && Result.is_ok (Relation.validate col)
     end
  && begin
       (* Canonical byte round-trip mid-stream: decoded store equals the
          original and serializes to the same bytes. *)
       let bytes = Column_store.to_bytes cs in
       match Column_store.of_bytes schema bytes with
       | Error e -> Alcotest.failf "of_bytes: %s" e
       | Ok cs' ->
         String.equal bytes (Column_store.to_bytes cs')
         && Column_store.cardinality cs' = Relation.cardinality row
     end

let qcheck_tests =
  [
    QCheck.Test.make ~name:"planned run equals matcher (random rules/dbs)" ~count:300
      full_equiv_arb check_full_equivalence;
    QCheck.Test.make ~name:"planned staged run equals matcher (random deltas)" ~count:300
      staged_arb check_staged_equivalence;
    QCheck.Test.make ~name:"columnar backend equals row (full plans)" ~count:300
      full_equiv_arb check_backend_full_equivalence;
    QCheck.Test.make ~name:"columnar backend equals row (staged plans)" ~count:300
      staged_arb check_backend_staged_equivalence;
    QCheck.Test.make ~name:"columnar backend equals row (random mutations)" ~count:300
      ops_arb check_ops_equivalence;
  ]

(* --- dred through compiled delta plans ---------------------------------------- *)

let edge_schema = Schema.make [ ("src", Value.TInt); ("dst", Value.TInt) ]

let db_with_edges ?backend edges =
  let db = Database.create ?backend () in
  let r = Database.create_table db "edge" edge_schema in
  List.iter (fun (a, b) -> Relation.insert r [| i a; i b |]) edges;
  db

let nonrec_program =
  [
    Ast.rule (atom "p" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
    Ast.rule
      (atom "q" [ v "x"; v "z" ])
      [ Ast.Pos (atom "p" [ v "x" ]); Ast.Pos (atom "edge" [ v "x"; v "z" ]) ];
  ]

let tc_program =
  [
    Ast.rule (atom "tc" [ v "x"; v "y" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
    Ast.rule
      (atom "tc" [ v "x"; v "z" ])
      [ Ast.Pos (atom "edge" [ v "x"; v "y" ]); Ast.Pos (atom "tc" [ v "y"; v "z" ]) ];
  ]

(* DRed with a shared plan cache vs from-scratch evaluation. *)
let dred_planned_equivalence ~plans ~program ~db ~inserts ~deletes =
  let delta = Dred.Delta.create () in
  List.iter (fun (a, b) -> Dred.Delta.insert delta "edge" [| i a; i b |]) inserts;
  List.iter (fun (a, b) -> Dred.Delta.delete delta "edge" [| i a; i b |]) deletes;
  (match Dred.apply ~plans db program delta with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let fresh = Database.create () in
  let r = Database.create_table fresh "edge" edge_schema in
  Relation.iter (fun t count -> Relation.insert ~count r t) (Database.find db "edge");
  Engine.run_exn fresh program;
  let empty = Relation.create (Schema.make []) in
  List.iter
    (fun pred ->
      let incremental = Option.value (Database.find_opt db pred) ~default:empty in
      let scratch = Option.value (Database.find_opt fresh pred) ~default:empty in
      if not (Relation.equal_contents incremental scratch) then
        Alcotest.failf "predicate %s differs: incremental %d tuples vs scratch %d" pred
          (Relation.cardinality incremental) (Relation.cardinality scratch))
    (Ast.idb_preds program)

let test_dred_planned_insert_delete_rederive () =
  (* One shared cache across full eval + three incremental steps: insert,
     delete with surviving alternative derivations, and a cyclic delete that
     forces the rederivation (recompute-and-diff) path. *)
  let plans = Plan.Cache.create () in
  let db = db_with_edges [ (1, 2); (2, 3); (1, 3) ] in
  (match Engine.run ~plans db nonrec_program with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  dred_planned_equivalence ~plans ~program:nonrec_program ~db ~inserts:[ (3, 4); (4, 1) ]
    ~deletes:[];
  dred_planned_equivalence ~plans ~program:nonrec_program ~db ~inserts:[]
    ~deletes:[ (1, 2) ];
  let compiles_after_two = Plan.Cache.compiles plans in
  dred_planned_equivalence ~plans ~program:nonrec_program ~db ~inserts:[ (5, 1) ]
    ~deletes:[ (2, 3) ];
  (* The third step exercises only rule/position combinations already seen,
     so the shared cache must not compile anything new. *)
  Alcotest.(check int) "cache reused across steps" compiles_after_two
    (Plan.Cache.compiles plans)

let test_dred_planned_recursive_rederive () =
  let plans = Plan.Cache.create () in
  let db = db_with_edges [ (1, 2); (2, 3); (3, 1); (3, 4) ] in
  (match Engine.run ~plans db tc_program with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Deleting a cycle edge: counting alone cannot retract tc tuples with
     cyclic support; the recompute fallback (also running compiled plans)
     must produce the scratch result. *)
  dred_planned_equivalence ~plans ~program:tc_program ~db ~inserts:[] ~deletes:[ (2, 3) ];
  dred_planned_equivalence ~plans ~program:tc_program ~db ~inserts:[ (4, 5); (2, 3) ]
    ~deletes:[ (3, 4) ]

let test_engine_planned_negation_guard () =
  (* Full planned evaluation through Engine.run on a program with negation
     and a guard, vs the same program on a fresh db — regression anchor for
     the sink example from test_datalog. *)
  let program =
    [
      Ast.rule (atom "has_out" [ v "x" ]) [ Ast.Pos (atom "edge" [ v "x"; v "y" ]) ];
      Ast.rule
        ~guards:[ Ast.Neq (v "x", v "y") ]
        (atom "sink_for" [ v "y"; v "x" ])
        [ Ast.Pos (atom "edge" [ v "y"; v "x" ]); Ast.Neg (atom "has_out" [ v "x" ]) ];
    ]
  in
  let db = db_with_edges [ (1, 2); (2, 3); (4, 4) ] in
  Engine.run_exn db program;
  let sink = Database.find db "sink_for" in
  Alcotest.(check int) "one sink pair" 1 (Relation.cardinality sink);
  Alcotest.(check bool) "2->3" true (Relation.mem sink [| i 2; i 3 |])

(* --- columnar end-to-end: dred + grounding bit-identity ----------------------- *)

module Program = Dd_core.Program
module Grounding = Dd_core.Grounding
module Core_engine = Dd_core.Engine
module Semantics = Dd_fgraph.Semantics
module Serialize = Dd_fgraph.Serialize

let s = Value.str

let test_dred_planned_columnar_backend () =
  (* The full DRed loop — counting deletes, Patched old-views, recursive
     recompute-and-diff — over columnar tables, checked against from-scratch
     row evaluation (dred_planned_equivalence's scratch db is row-backed). *)
  let plans = Plan.Cache.create () in
  let db = db_with_edges ~backend:Relation.Columnar [ (1, 2); (2, 3); (3, 1); (3, 4) ] in
  (match Engine.run ~plans db tc_program with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  dred_planned_equivalence ~plans ~program:tc_program ~db ~inserts:[ (4, 5) ]
    ~deletes:[ (2, 3) ];
  dred_planned_equivalence ~plans ~program:tc_program ~db ~inserts:[] ~deletes:[ (3, 1) ]

(* A miniature KBC program (classifier + correlation + supervision), used to
   check that grounding is bit-identical across storage backends. *)
let kbc_item_schema = Schema.make [ ("item", Value.TStr); ("feature", Value.TStr) ]
let kbc_link_schema = Schema.make [ ("a", Value.TStr); ("b", Value.TStr) ]
let kbc_label_schema = Schema.make [ ("item", Value.TStr); ("lbl", Value.TBool) ]
let kbc_query_schema = Schema.make [ ("item", Value.TStr) ]

let kbc_program =
  {
    Program.input_schemas =
      [
        ("item_feature", kbc_item_schema);
        ("link", kbc_link_schema);
        ("label_src", kbc_label_schema);
      ];
    query_relations = [ ("is_pos", kbc_query_schema) ];
    rules =
      [
        Program.Infer
          {
            Program.name = "classify";
            head = atom "is_pos" [ v "x" ];
            body = [ Ast.Pos (atom "item_feature" [ v "x"; v "f" ]) ];
            guards = [];
            weight = Program.Tied [ v "f" ];
            semantics = Semantics.Linear;
            populate_head = true;
          };
        Program.Infer
          {
            Program.name = "linked";
            head = atom "is_pos" [ v "x" ];
            body =
              [ Ast.Pos (atom "is_pos" [ v "y" ]); Ast.Pos (atom "link" [ v "x"; v "y" ]) ];
            guards = [];
            weight = Program.Fixed 0.8;
            semantics = Semantics.Logical;
            populate_head = false;
          };
        Program.Supervise
          ( "labels",
            Ast.rule
              (atom "is_pos_ev" [ v "x"; v "l" ])
              [ Ast.Pos (atom "label_src" [ v "x"; v "l" ]) ] );
      ];
  }

let kbc_db backend =
  let db = Database.create ~backend () in
  ignore (Database.create_table db "item_feature" kbc_item_schema);
  ignore (Database.create_table db "link" kbc_link_schema);
  ignore (Database.create_table db "label_src" kbc_label_schema);
  Database.insert_rows db "item_feature"
    [ [| s "a"; s "f1" |]; [| s "b"; s "f1" |]; [| s "c"; s "f2" |]; [| s "d"; s "f2" |] ];
  Database.insert_rows db "link" [ [| s "b"; s "a" |]; [| s "c"; s "d" |] ];
  Database.insert_rows db "label_src"
    [ [| s "a"; Value.Bool true |]; [| s "d"; Value.Bool false |] ];
  db

let kbc_delta () =
  let d = Dred.Delta.create () in
  Dred.Delta.insert d "item_feature" [| s "e"; s "f1" |];
  Dred.Delta.insert d "link" [| s "e"; s "a" |];
  Dred.Delta.delete d "item_feature" [| s "b"; s "f1" |];
  d

let test_grounding_bit_identical_across_backends () =
  let ground backend = Grounding.ground (kbc_db backend) kbc_program in
  let row = ground Relation.Row and col = ground Relation.Columnar in
  Alcotest.(check string) "initial graphs bit-identical"
    (Serialize.to_string (Grounding.graph row))
    (Serialize.to_string (Grounding.graph col));
  ignore (Grounding.extend row (Grounding.data_update (kbc_delta ())));
  ignore (Grounding.extend col (Grounding.data_update (kbc_delta ())));
  Alcotest.(check string) "extended graphs bit-identical"
    (Serialize.to_string (Grounding.graph row))
    (Serialize.to_string (Grounding.graph col))

let test_engine_identical_across_backends () =
  (* Whole pipeline: create (ground + learn + materialize), one incremental
     update, then compare graph bytes and every marginal exactly. *)
  let run backend =
    let db = kbc_db backend in
    let options =
      {
        Core_engine.default_options with
        Core_engine.materialization_samples = 60;
        inference_chain = 30;
        initial_learning_epochs = 5;
        incremental_learning_epochs = 2;
        relation_backend = backend;
      }
    in
    let engine = Core_engine.create ~options db kbc_program in
    ignore (Core_engine.apply_update engine (Grounding.data_update (kbc_delta ())));
    (Serialize.to_string (Core_engine.graph engine), Core_engine.marginals_by_relation engine)
  in
  let g_row, m_row = run Relation.Row in
  let g_col, m_col = run Relation.Columnar in
  Alcotest.(check string) "graphs bit-identical" g_row g_col;
  Alcotest.(check bool) "marginals identical" true (m_row = m_col)

let () =
  Alcotest.run "dd_datalog_plan"
    [
      ( "compile",
        [
          Alcotest.test_case "order prefers bound literals" `Quick test_order_prefers_bound;
          Alcotest.test_case "delta plan starts at delta" `Quick test_delta_plan_starts_at_delta;
          Alcotest.test_case "cache reuses plans" `Quick test_cache_reuses_plans;
          Alcotest.test_case "run mode checks" `Quick test_run_rejects_wrong_mode;
        ] );
      ( "views",
        [
          Alcotest.test_case "view_mem patched" `Quick test_view_mem_patched;
          Alcotest.test_case "patched equals materialized" `Quick
            test_patched_view_equals_materialized;
        ] );
      ( "dred",
        [
          Alcotest.test_case "insert/delete/rederive with shared cache" `Quick
            test_dred_planned_insert_delete_rederive;
          Alcotest.test_case "recursive rederive" `Quick test_dred_planned_recursive_rederive;
          Alcotest.test_case "engine negation+guard" `Quick test_engine_planned_negation_guard;
        ] );
      ( "columnar",
        [
          Alcotest.test_case "dred over columnar tables" `Quick
            test_dred_planned_columnar_backend;
          Alcotest.test_case "grounding bit-identical" `Quick
            test_grounding_bit_identical_across_backends;
          Alcotest.test_case "engine graph+marginals identical" `Quick
            test_engine_identical_across_backends;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
