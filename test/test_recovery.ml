(* Tests for checkpoint/recovery: round-trips, corruption detection, WAL
   replay, and the crash–recover–compare property over every fault point
   the Fig-KBC pipeline exercises. *)

module Database = Dd_relational.Database
module Relation = Dd_relational.Relation
module Column_store = Dd_relational.Column_store
module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Serialize = Dd_fgraph.Serialize
module Fault = Dd_util.Fault
module Corpus = Dd_kbc.Corpus
module Pipeline = Dd_kbc.Pipeline
module Quality = Dd_kbc.Quality
module Checkpoint = Dd_kbc.Checkpoint
module Recovery = Dd_kbc.Recovery

let tiny_config = { Corpus.default with Corpus.docs = 12; relations = 2; entities = 20; seed = 5 }

let quick_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 80;
    inference_chain = 40;
    initial_learning_epochs = 8;
    incremental_learning_epochs = 2;
  }

let make_engine () =
  let corpus = Corpus.generate tiny_config in
  let db = Database.create () in
  Corpus.load corpus db;
  Engine.create ~options:quick_options db (Pipeline.base_program ())

let with_store name f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) ("dd_recovery_" ^ name) in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Array.iter
    (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
    (Sys.readdir dir);
  Fault.reset ();
  f dir

let flip_byte_in_file path pos =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  let pos = if pos < 0 then len + pos else pos in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let recover_exn store =
  match Checkpoint.recover store with
  | Ok pair -> pair
  | Error e -> Alcotest.fail (Checkpoint.error_to_string e)

(* --- checkpoint store --------------------------------------------------------- *)

let test_checkpoint_roundtrip () =
  with_store "roundtrip" (fun dir ->
      let engine = make_engine () in
      let store = Checkpoint.open_store dir in
      Checkpoint.save store engine;
      Alcotest.(check bool) "manifest published" true (Checkpoint.latest store <> None);
      let recovered, applied = recover_exn (Checkpoint.open_store dir) in
      Alcotest.(check int) "nothing replayed" 0 applied;
      Alcotest.(check bool) "recovered state validates" true
        (Checkpoint.validate recovered = Ok ());
      Alcotest.(check string) "byte-identical re-serialization"
        (Serialize.to_string (Engine.graph engine))
        (Serialize.to_string (Engine.graph recovered));
      Alcotest.(check bool) "same marginals" true
        (Engine.marginals_by_relation recovered = Engine.marginals_by_relation engine))

let test_checkpoint_detects_corruption () =
  (* One flipped byte anywhere in the checkpoint must fail the load with a
     checksum error, both in the text graph section and in the binary
     state section. *)
  List.iter
    (fun (label, pos) ->
      with_store "corrupt" (fun dir ->
          let engine = make_engine () in
          let store = Checkpoint.open_store dir in
          Checkpoint.save store engine;
          Checkpoint.abandon store;
          let ckpt =
            match Checkpoint.latest store with
            | Some name -> Filename.concat dir name
            | None -> Alcotest.fail "no checkpoint published"
          in
          flip_byte_in_file ckpt pos;
          match Checkpoint.recover (Checkpoint.open_store dir) with
          | Error (Checkpoint.Corrupt _) -> ()
          | Error e ->
            Alcotest.fail (label ^ ": wrong error: " ^ Checkpoint.error_to_string e)
          | Ok _ -> Alcotest.fail (label ^ ": corruption not detected")))
    [ ("graph section", 40); ("state section", -40) ]

let test_wal_replay () =
  with_store "wal" (fun dir ->
      let engine = make_engine () in
      let store = Checkpoint.open_store dir in
      Checkpoint.save store engine;
      ignore (Checkpoint.apply_update store engine (Pipeline.update_of Pipeline.A1));
      ignore (Checkpoint.apply_update store engine (Pipeline.update_of Pipeline.FE1));
      Checkpoint.abandon store;
      let recovered, applied = recover_exn (Checkpoint.open_store dir) in
      Alcotest.(check int) "both entries replayed" 2 applied;
      (* Replay retraces the live run bit for bit: the snapshot includes
         the engine PRNG. *)
      Alcotest.(check bool) "bitwise-identical marginals" true
        (Engine.marginals_by_relation recovered = Engine.marginals_by_relation engine))

let test_torn_wal_tail_discarded () =
  with_store "torn" (fun dir ->
      let engine = make_engine () in
      let store = Checkpoint.open_store dir in
      Checkpoint.save store engine;
      ignore (Checkpoint.apply_update store engine (Pipeline.update_of Pipeline.A1));
      Checkpoint.abandon store;
      (* A mid-append crash: entry header present, payload cut short. *)
      let oc =
        open_out_gen [ Open_wronly; Open_append ] 0o644 (Filename.concat dir "wal-0.log")
      in
      output_string oc "entry 2 9999 00000000\npartial payl";
      close_out oc;
      let _, applied = recover_exn (Checkpoint.open_store dir) in
      Alcotest.(check int) "torn tail dropped, entry 1 kept" 1 applied)

let test_recover_empty_store () =
  with_store "empty" (fun dir ->
      match Checkpoint.recover (Checkpoint.open_store dir) with
      | Error Checkpoint.No_checkpoint -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ Checkpoint.error_to_string e)
      | Ok _ -> Alcotest.fail "recovered from an empty store")

let test_checkpoint_roundtrip_columnar () =
  with_store "columnar" (fun dir ->
      let options = { quick_options with Engine.relation_backend = Relation.Columnar } in
      let corpus = Corpus.generate tiny_config in
      let db = Database.create () in
      Corpus.load corpus db;
      let engine = Engine.create ~options db (Pipeline.base_program ()) in
      let store = Checkpoint.open_store dir in
      Checkpoint.save store engine;
      ignore (Checkpoint.apply_update store engine (Pipeline.update_of Pipeline.FE1));
      Checkpoint.abandon store;
      let recovered, applied = recover_exn (Checkpoint.open_store dir) in
      Alcotest.(check int) "one entry replayed" 1 applied;
      Alcotest.(check bool) "recovered state validates" true
        (Checkpoint.validate recovered = Ok ());
      Alcotest.(check bool) "bitwise-identical marginals" true
        (Engine.marginals_by_relation recovered = Engine.marginals_by_relation engine);
      (* The columnar backend survives the round trip with dictionaries
         intact: every table re-serializes to the live engine's canonical
         bytes. *)
      let db_live = Grounding.database (Engine.grounding engine) in
      let db_rec = Grounding.database (Engine.grounding recovered) in
      Alcotest.(check bool) "backend preserved" true
        (Database.backend db_rec = Relation.Columnar);
      List.iter
        (fun name ->
          let live = Database.find db_live name and back = Database.find db_rec name in
          match (Relation.columnar live, Relation.columnar back) with
          | Some a, Some b ->
            Alcotest.(check string) (name ^ " canonical bytes")
              (Column_store.to_bytes a) (Column_store.to_bytes b)
          | _ -> Alcotest.failf "%s not columnar after recovery" name)
        (Database.table_names db_rec);
      (* The canonical byte format is CRC-gated end to end: one flipped bit
         anywhere must be rejected. *)
      let name = List.hd (Database.table_names db_rec) in
      let r = Database.find db_rec name in
      let cs = Option.get (Relation.columnar r) in
      let b = Bytes.of_string (Column_store.to_bytes cs) in
      let pos = Bytes.length b / 2 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
      match Column_store.of_bytes (Relation.schema r) (Bytes.to_string b) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupt column bytes accepted")

let test_fallback_to_previous_version () =
  with_store "fallback" (fun dir ->
      let engine = make_engine () in
      let store = Checkpoint.open_store dir in
      Checkpoint.save store engine;
      ignore (Checkpoint.apply_update store engine (Pipeline.update_of Pipeline.A1));
      Checkpoint.save store engine;
      Checkpoint.abandon store;
      (* The newest version fails its CRC; recovery must quarantine it,
         fall back to the previous version, and chain-replay the WAL
         forward — landing on the same state. *)
      flip_byte_in_file (Filename.concat dir "ckpt-1.ddckpt") (-40);
      let store = Checkpoint.open_store dir in
      let recovered, applied = recover_exn store in
      Alcotest.(check int) "replayed forward to the same sequence" 1 applied;
      Alcotest.(check bool) "bitwise-identical marginals" true
        (Engine.marginals_by_relation recovered = Engine.marginals_by_relation engine);
      Alcotest.(check bool) "damaged version preserved as evidence" true
        (List.exists
           (fun n -> n = "ckpt-1.ddckpt.quarantined")
           (Checkpoint.quarantined_files store));
      (* The fallback never resurrects the torn version on later loads:
         recovery republished, so the store is clean again. *)
      match Checkpoint.verify_version store 1 with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("republished version invalid: " ^ Checkpoint.error_to_string e))

(* --- crash–recover–compare ---------------------------------------------------- *)

let test_crash_recovery_sweep () =
  with_store "sweep" (fun dir ->
      let corpus = Corpus.generate tiny_config in
      let base, outcomes = Recovery.sweep ~options:quick_options ~dir corpus in
      Alcotest.(check bool) "pipeline exercises several points" true
        (List.length base.Recovery.exercised >= 6);
      Alcotest.(check int) "one outcome per exercised point"
        (List.length base.Recovery.exercised)
        (List.length outcomes);
      List.iter
        (fun (o : Recovery.outcome) ->
          (* Every armed point must actually fire: either it killed the
             run (crashed) or it damaged bytes silently and the harness
             forced a power cut (latent). *)
          Alcotest.(check bool)
            (o.Recovery.point ^ " crashed or fired silently")
            true
            (o.Recovery.crashed || o.Recovery.latent);
          Alcotest.(check (float 0.0))
            (o.Recovery.point ^ " high-conf jaccard")
            1.0 o.Recovery.agreement.Quality.high_conf_jaccard;
          Alcotest.(check (float 0.0))
            (o.Recovery.point ^ " max marginal diff")
            0.0 o.Recovery.agreement.Quality.max_diff)
        outcomes)

let () =
  Alcotest.run "dd_recovery"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "detects corruption" `Quick test_checkpoint_detects_corruption;
          Alcotest.test_case "wal replay" `Quick test_wal_replay;
          Alcotest.test_case "torn wal tail" `Quick test_torn_wal_tail_discarded;
          Alcotest.test_case "empty store" `Quick test_recover_empty_store;
          Alcotest.test_case "columnar roundtrip" `Quick test_checkpoint_roundtrip_columnar;
          Alcotest.test_case "fallback to previous version" `Quick
            test_fallback_to_previous_version;
        ] );
      ( "crash-recover-compare",
        [ Alcotest.test_case "sweep all fault points" `Slow test_crash_recovery_sweep ] );
    ]
