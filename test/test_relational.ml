(* Tests for Dd_relational: values, schemas, tuples, relations, algebra,
   CSV ingestion and the database catalog. *)

module Value = Dd_relational.Value
module Schema = Dd_relational.Schema
module Tuple = Dd_relational.Tuple
module Relation = Dd_relational.Relation
module Algebra = Dd_relational.Algebra
module Database = Dd_relational.Database
module Csv = Dd_relational.Csv

let i = Value.int
let s = Value.str
let b = Value.bool
let f = Value.float

(* --- values ---------------------------------------------------------------- *)

let test_value_compare_order () =
  Alcotest.(check bool) "null smallest" true (Value.compare Value.Null (i 0) < 0);
  Alcotest.(check bool) "ints ordered" true (Value.compare (i 1) (i 2) < 0);
  Alcotest.(check bool) "strings ordered" true (Value.compare (s "a") (s "b") < 0);
  Alcotest.(check int) "equal" 0 (Value.compare (s "x") (s "x"))

let test_value_equal_hash_consistent () =
  List.iter
    (fun (a, b) ->
      if Value.equal a b then
        Alcotest.(check int) "equal values share hash" (Value.hash a) (Value.hash b))
    [ (i 5, i 5); (s "x", s "x"); (Value.Null, Value.Null); (f 1.5, f 1.5) ]

let test_value_conforms () =
  Alcotest.(check bool) "int conforms" true (Value.conforms (i 3) Value.TInt);
  Alcotest.(check bool) "mismatch" false (Value.conforms (i 3) Value.TStr);
  Alcotest.(check bool) "null conforms all" true (Value.conforms Value.Null Value.TBool)

let test_value_extractors () =
  Alcotest.(check int) "as_int" 7 (Value.as_int (i 7));
  Alcotest.(check string) "as_str" "hi" (Value.as_str (s "hi"));
  Alcotest.(check bool) "as_bool" true (Value.as_bool (b true));
  Alcotest.(check (float 0.0)) "as_float from int" 3.0 (Value.as_float (i 3));
  Alcotest.check_raises "as_int on str" (Invalid_argument "Value.as_int: hi") (fun () ->
      ignore (Value.as_int (s "hi")))

let test_value_to_string () =
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "int" "42" (Value.to_string (i 42));
  Alcotest.(check string) "float" "1.5" (Value.to_string (f 1.5))

(* --- schemas ---------------------------------------------------------------- *)

let ab_schema = Schema.make [ ("a", Value.TInt); ("b", Value.TStr) ]

let test_schema_basics () =
  Alcotest.(check int) "arity" 2 (Schema.arity ab_schema);
  Alcotest.(check int) "index" 1 (Schema.column_index ab_schema "b");
  Alcotest.(check bool) "mem" true (Schema.mem ab_schema "a");
  Alcotest.(check bool) "not mem" false (Schema.mem ab_schema "z");
  Alcotest.(check (list string)) "names" [ "a"; "b" ] (Schema.names ab_schema)

let test_schema_duplicate_rejected () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Schema.make: duplicate column a")
    (fun () -> ignore (Schema.make [ ("a", Value.TInt); ("a", Value.TStr) ]))

let test_schema_conforms () =
  Alcotest.(check bool) "good" true (Schema.conforms ab_schema [| i 1; s "x" |]);
  Alcotest.(check bool) "wrong arity" false (Schema.conforms ab_schema [| i 1 |]);
  Alcotest.(check bool) "wrong type" false (Schema.conforms ab_schema [| s "x"; s "y" |]);
  Alcotest.(check bool) "null ok" true (Schema.conforms ab_schema [| Value.Null; s "y" |])

let test_schema_project_concat_rename () =
  let p = Schema.project ab_schema [ "b" ] in
  Alcotest.(check (list string)) "projected" [ "b" ] (Schema.names p);
  let c = Schema.concat ab_schema (Schema.make [ ("c", Value.TBool) ]) in
  Alcotest.(check int) "concat arity" 3 (Schema.arity c);
  let r = Schema.rename ab_schema [ ("a", "x") ] in
  Alcotest.(check (list string)) "renamed" [ "x"; "b" ] (Schema.names r)

(* --- tuples ----------------------------------------------------------------- *)

let test_tuple_equality_hash () =
  let t1 = [| i 1; s "x" |] and t2 = [| i 1; s "x" |] in
  Alcotest.(check bool) "equal" true (Tuple.equal t1 t2);
  Alcotest.(check int) "hash" (Tuple.hash t1) (Tuple.hash t2);
  Alcotest.(check bool) "not equal" false (Tuple.equal t1 [| i 2; s "x" |])

let test_tuple_compare_lexicographic () =
  Alcotest.(check bool) "lex" true (Tuple.compare [| i 1; i 9 |] [| i 2; i 0 |] < 0);
  Alcotest.(check bool) "prefix smaller" true (Tuple.compare [| i 1 |] [| i 1; i 0 |] < 0)

let test_tuple_project_concat () =
  let t = [| i 1; s "x"; b true |] in
  Alcotest.(check bool) "project" true
    (Tuple.equal [| b true; i 1 |] (Tuple.project t [| 2; 0 |]));
  Alcotest.(check bool) "concat" true
    (Tuple.equal [| i 1; i 2 |] (Tuple.concat [| i 1 |] [| i 2 |]))

(* --- relations -------------------------------------------------------------- *)

let make_rel rows =
  let r = Relation.create ~name:"t" ab_schema in
  List.iter (fun row -> Relation.insert r row) rows;
  r

let test_relation_insert_count () =
  let r = make_rel [ [| i 1; s "x" |] ] in
  Alcotest.(check int) "card" 1 (Relation.cardinality r);
  Relation.insert ~count:3 r [| i 1; s "x" |];
  Alcotest.(check int) "card stable" 1 (Relation.cardinality r);
  Alcotest.(check int) "count" 4 (Relation.count r [| i 1; s "x" |]);
  Alcotest.(check int) "total" 4 (Relation.total_count r)

let test_relation_remove_semantics () =
  let r = make_rel [] in
  Relation.insert ~count:3 r [| i 1; s "x" |];
  Alcotest.(check int) "removed 2" 2 (Relation.remove ~count:2 r [| i 1; s "x" |]);
  Alcotest.(check bool) "still present" true (Relation.mem r [| i 1; s "x" |]);
  Alcotest.(check int) "removed last" 1 (Relation.remove ~count:5 r [| i 1; s "x" |]);
  Alcotest.(check bool) "gone" false (Relation.mem r [| i 1; s "x" |]);
  Alcotest.(check int) "remove absent" 0 (Relation.remove r [| i 9; s "z" |])

let test_relation_schema_enforced () =
  let r = make_rel [] in
  Alcotest.(check bool) "bad tuple raises" true
    (match Relation.insert r [| s "wrong"; s "type" |] with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_relation_delete_clear () =
  let r = make_rel [ [| i 1; s "x" |]; [| i 2; s "y" |] ] in
  Relation.delete_all r [| i 1; s "x" |];
  Alcotest.(check int) "one left" 1 (Relation.cardinality r);
  Relation.clear r;
  Alcotest.(check int) "empty" 0 (Relation.cardinality r)

let test_relation_copy_independent () =
  let r = make_rel [ [| i 1; s "x" |] ] in
  let c = Relation.copy r in
  Relation.insert c [| i 2; s "y" |];
  Alcotest.(check int) "copy grew" 2 (Relation.cardinality c);
  Alcotest.(check int) "original unchanged" 1 (Relation.cardinality r)

let test_relation_equal () =
  let r1 = make_rel [ [| i 1; s "x" |] ] and r2 = make_rel [ [| i 1; s "x" |] ] in
  Alcotest.(check bool) "contents equal" true (Relation.equal_contents r1 r2);
  Relation.insert r2 [| i 1; s "x" |];
  Alcotest.(check bool) "counts differ" false (Relation.equal_contents r1 r2);
  Alcotest.(check bool) "sets equal" true (Relation.equal_sets r1 r2)

let test_relation_filter () =
  let r = make_rel [ [| i 1; s "x" |]; [| i 2; s "y" |]; [| i 3; s "x" |] ] in
  let only_x = Relation.filter (fun t -> Value.equal t.(1) (s "x")) r in
  Alcotest.(check int) "filtered" 2 (Relation.cardinality only_x)

let bucket_size index key =
  match Hashtbl.find_opt index key with
  | None -> 0
  | Some bucket -> Tuple.Hashtbl.length bucket

let test_relation_build_index () =
  let r = make_rel [ [| i 1; s "x" |]; [| i 2; s "x" |]; [| i 3; s "y" |] ] in
  let index = Relation.build_index r [| 1 |] in
  Alcotest.(check int) "x bucket" 2 (bucket_size index [| s "x" |]);
  Alcotest.(check int) "y bucket" 1 (bucket_size index [| s "y" |])

let test_relation_get_index_maintained () =
  (* The cached index must track subsequent inserts and removes. *)
  let r = make_rel [ [| i 1; s "x" |] ] in
  let index = Relation.get_index r [| 1 |] in
  Alcotest.(check int) "initial" 1 (bucket_size index [| s "x" |]);
  Relation.insert r [| i 2; s "x" |];
  Alcotest.(check int) "after insert" 2 (bucket_size index [| s "x" |]);
  ignore (Relation.remove r [| i 1; s "x" |]);
  Alcotest.(check int) "after remove" 1 (bucket_size index [| s "x" |]);
  (* Count-only changes must not duplicate index entries, and the counted
     bucket must track the live multiplicity. *)
  Relation.insert ~count:5 r [| i 2; s "x" |];
  Alcotest.(check int) "count change" 1 (bucket_size index [| s "x" |]);
  Alcotest.(check int) "bucket multiplicity" 6
    (Tuple.Hashtbl.find (Hashtbl.find index [| s "x" |]) [| i 2; s "x" |]);
  (* The same columns yield the same cached table. *)
  Alcotest.(check bool) "cached" true (Relation.get_index r [| 1 |] == index)

let test_relation_index_skewed_key_removal () =
  (* Regression for the old list-bucket index: removing [n] tuples that all
     share one key was O(bucket) per removal (O(n^2) total) because each
     remove rebuilt the bucket with [List.filter].  Counted hashtable
     buckets make each removal O(1); at this size the quadratic version
     takes minutes, so mere completion is the assertion — plus bucket
     integrity along the way. *)
  let n = 20_000 in
  let r = Relation.create ~name:"skew" ab_schema in
  let index = Relation.get_index r [| 1 |] in
  for k = 1 to n do
    Relation.insert r [| i k; s "hot" |]
  done;
  Alcotest.(check int) "bucket full" n (bucket_size index [| s "hot" |]);
  for k = 1 to n do
    ignore (Relation.remove r [| i k; s "hot" |])
  done;
  Alcotest.(check int) "bucket drained" 0 (bucket_size index [| s "hot" |]);
  Alcotest.(check int) "empty" 0 (Relation.cardinality r)

let test_relation_copy_rebuilds_index () =
  (* [Relation.copy] drops cached indexes: the copy's first [get_index] must
     rebuild from the copied rows, stay independent of the original's index,
     and track the copy's own subsequent mutations. *)
  let r = make_rel [ [| i 1; s "x" |]; [| i 2; s "x" |]; [| i 3; s "y" |] ] in
  let orig_index = Relation.get_index r [| 1 |] in
  let c = Relation.copy r in
  let copy_index = Relation.get_index c [| 1 |] in
  Alcotest.(check bool) "distinct tables" true (copy_index != orig_index);
  Alcotest.(check int) "rebuilt x bucket" 2 (bucket_size copy_index [| s "x" |]);
  Alcotest.(check int) "rebuilt y bucket" 1 (bucket_size copy_index [| s "y" |]);
  (* Mutating the copy maintains the copy's index and leaves the original's
     untouched. *)
  Relation.insert c [| i 4; s "y" |];
  ignore (Relation.remove c [| i 1; s "x" |]);
  Alcotest.(check int) "copy y grew" 2 (bucket_size copy_index [| s "y" |]);
  Alcotest.(check int) "copy x shrank" 1 (bucket_size copy_index [| s "x" |]);
  Alcotest.(check int) "original y" 1 (bucket_size orig_index [| s "y" |]);
  Alcotest.(check int) "original x" 2 (bucket_size orig_index [| s "x" |]);
  (* And vice versa: mutating the original does not leak into the copy. *)
  Relation.insert r [| i 5; s "x" |];
  Alcotest.(check int) "copy x unaffected" 1 (bucket_size copy_index [| s "x" |])

let test_relation_get_index_cleared () =
  let r = make_rel [ [| i 1; s "x" |] ] in
  ignore (Relation.get_index r [| 1 |]);
  Relation.clear r;
  Relation.insert r [| i 9; s "z" |];
  let fresh = Relation.get_index r [| 1 |] in
  Alcotest.(check bool) "has z" true (Hashtbl.mem fresh [| s "z" |]);
  Alcotest.(check bool) "no x" false (Hashtbl.mem fresh [| s "x" |])

(* --- algebra ---------------------------------------------------------------- *)

let people () =
  let schema = Schema.make [ ("id", Value.TInt); ("city", Value.TStr) ] in
  Relation.of_list ~name:"people" schema
    [ [| i 1; s "sf" |]; [| i 2; s "nyc" |]; [| i 3; s "sf" |] ]

let test_select () =
  let r = Algebra.select_eq (people ()) "city" (s "sf") in
  Alcotest.(check int) "two in sf" 2 (Relation.cardinality r)

let test_project_merges_counts () =
  let r = Algebra.project (people ()) [ "city" ] in
  Alcotest.(check int) "two cities" 2 (Relation.cardinality r);
  Alcotest.(check int) "sf count merged" 2 (Relation.count r [| s "sf" |])

let test_rename () =
  let r = Algebra.rename (people ()) [ ("city", "town") ] in
  Alcotest.(check (list string)) "renamed" [ "id"; "town" ] (Schema.names (Relation.schema r))

let test_product () =
  let small = Relation.of_list (Schema.make [ ("x", Value.TInt) ]) [ [| i 1 |]; [| i 2 |] ] in
  let r = Algebra.product (people ()) small in
  Alcotest.(check int) "3 x 2" 6 (Relation.cardinality r)

let test_natural_join () =
  let cities =
    Relation.of_list ~name:"cities"
      (Schema.make [ ("city", Value.TStr); ("state", Value.TStr) ])
      [ [| s "sf"; s "ca" |]; [| s "nyc"; s "ny" |] ]
  in
  let joined = Algebra.natural_join (people ()) cities in
  Alcotest.(check int) "all match" 3 (Relation.cardinality joined);
  Alcotest.(check int) "3 columns" 3 (Schema.arity (Relation.schema joined))

let test_natural_join_no_shared_is_product () =
  let other = Relation.of_list (Schema.make [ ("z", Value.TInt) ]) [ [| i 9 |] ] in
  let joined = Algebra.natural_join (people ()) other in
  Alcotest.(check int) "product" 3 (Relation.cardinality joined)

let test_equi_join_disambiguates () =
  let other =
    Relation.of_list ~name:"other"
      (Schema.make [ ("id", Value.TInt); ("score", Value.TInt) ])
      [ [| i 1; i 100 |] ]
  in
  let joined = Algebra.equi_join (people ()) other [ ("id", "id") ] in
  Alcotest.(check int) "one match" 1 (Relation.cardinality joined);
  Alcotest.(check bool) "prefixed col" true (Schema.mem (Relation.schema joined) "other.id")

let test_union_difference_intersect () =
  let a = people () in
  let b =
    Relation.of_list
      (Schema.make [ ("id", Value.TInt); ("city", Value.TStr) ])
      [ [| i 1; s "sf" |]; [| i 9; s "la" |] ]
  in
  Alcotest.(check int) "union distinct" 4 (Relation.cardinality (Algebra.union a b));
  Alcotest.(check int) "union counts add" 2
    (Relation.count (Algebra.union a b) [| i 1; s "sf" |]);
  Alcotest.(check int) "difference" 2 (Relation.cardinality (Algebra.difference a b));
  Alcotest.(check int) "intersect" 1 (Relation.cardinality (Algebra.intersect a b))

let test_distinct () =
  let r = make_rel [] in
  Relation.insert ~count:5 r [| i 1; s "x" |];
  let d = Algebra.distinct r in
  Alcotest.(check int) "count reset" 1 (Relation.count d [| i 1; s "x" |])

let test_aggregate_count_group () =
  let agg = Algebra.aggregate (people ()) ~group_by:[ "city" ] Algebra.Count ~output:"n" in
  Alcotest.(check int) "two groups" 2 (Relation.cardinality agg);
  Alcotest.(check bool) "sf has 2" true (Relation.mem agg [| s "sf"; i 2 |])

let test_aggregate_sum_min_max_avg () =
  let schema = Schema.make [ ("g", Value.TStr); ("v", Value.TInt) ] in
  let r = Relation.of_list schema [ [| s "a"; i 1 |]; [| s "a"; i 3 |]; [| s "b"; i 10 |] ] in
  let sum = Algebra.aggregate r ~group_by:[ "g" ] (Algebra.Sum "v") ~output:"s" in
  Alcotest.(check bool) "sum a" true (Relation.mem sum [| s "a"; i 4 |]);
  let mn = Algebra.aggregate r ~group_by:[ "g" ] (Algebra.Min "v") ~output:"m" in
  Alcotest.(check bool) "min a" true (Relation.mem mn [| s "a"; i 1 |]);
  let mx = Algebra.aggregate r ~group_by:[ "g" ] (Algebra.Max "v") ~output:"m" in
  Alcotest.(check bool) "max a" true (Relation.mem mx [| s "a"; i 3 |]);
  let avg = Algebra.aggregate r ~group_by:[ "g" ] (Algebra.Avg "v") ~output:"m" in
  Alcotest.(check bool) "avg a" true (Relation.mem avg [| s "a"; f 2.0 |])

let test_aggregate_global () =
  let agg = Algebra.aggregate (people ()) ~group_by:[] Algebra.Count ~output:"n" in
  Alcotest.(check bool) "global count" true (Relation.mem agg [| i 3 |])

let test_map_rows () =
  let out_schema = Schema.make [ ("id2", Value.TInt) ] in
  let r = Algebra.map_rows (people ()) out_schema (fun t -> [| i (Value.as_int t.(0) * 2) |]) in
  Alcotest.(check bool) "doubled" true (Relation.mem r [| i 4 |])

let test_flat_map_rows () =
  let out_schema = Schema.make [ ("tok", Value.TStr) ] in
  let r =
    Algebra.flat_map_rows (people ()) out_schema (fun t ->
        [ [| t.(1) |]; [| s (Value.as_str t.(1) ^ "!") |] ])
  in
  Alcotest.(check bool) "exploded" true (Relation.mem r [| s "sf!" |]);
  Alcotest.(check int) "distinct" 4 (Relation.cardinality r)

(* --- csv ------------------------------------------------------------------- *)

let test_csv_parse_values () =
  Alcotest.(check bool) "int" true (Value.equal (i 42) (Csv.parse_value Value.TInt "42"));
  Alcotest.(check bool) "bool" true (Value.equal (b true) (Csv.parse_value Value.TBool "true"));
  Alcotest.(check bool) "empty is null" true
    (Value.equal Value.Null (Csv.parse_value Value.TStr ""));
  Alcotest.(check bool) "bad int raises" true
    (match Csv.parse_value Value.TInt "xy" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_csv_load () =
  let r = Relation.create ab_schema in
  let n = Csv.load_string r "a,b\n1,x\n2,y\n\n3,z" in
  Alcotest.(check int) "rows loaded (header skipped)" 3 n;
  Alcotest.(check bool) "row present" true (Relation.mem r [| i 2; s "y" |])

let test_csv_wrong_arity () =
  let r = Relation.create ab_schema in
  Alcotest.(check bool) "arity error" true
    (match Csv.load_string r "1,x,extra" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- database --------------------------------------------------------------- *)

let test_database_catalog () =
  let db = Database.create () in
  let r = Database.create_table db "t" ab_schema in
  Relation.insert r [| i 1; s "x" |];
  Alcotest.(check bool) "mem" true (Database.mem db "t");
  Alcotest.(check int) "find" 1 (Relation.cardinality (Database.find db "t"));
  Alcotest.(check (list string)) "names" [ "t" ] (Database.table_names db);
  Alcotest.(check bool) "duplicate rejected" true
    (match Database.create_table db "t" ab_schema with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Database.drop_table db "t";
  Alcotest.(check bool) "dropped" false (Database.mem db "t")

let test_database_deep_copy () =
  let db = Database.create () in
  let r = Database.create_table db "t" ab_schema in
  Relation.insert r [| i 1; s "x" |];
  let dup = Database.copy db in
  Relation.insert (Database.find dup "t") [| i 2; s "y" |];
  Alcotest.(check int) "copy grew" 2 (Relation.cardinality (Database.find dup "t"));
  Alcotest.(check int) "original unchanged" 1 (Relation.cardinality (Database.find db "t"))

(* --- qcheck properties ------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  let tuple_gen =
    Gen.map (fun (a, b) -> [| i a; s (string_of_int b) |]) Gen.(pair (0 -- 20) (0 -- 5))
  in
  let rel_gen =
    Gen.map
      (fun rows ->
        let r = Relation.create ab_schema in
        List.iter (fun row -> Relation.insert r row) rows;
        r)
      (Gen.list_size Gen.(0 -- 30) tuple_gen)
  in
  let arb_rel = make ~print:(fun r -> Format.asprintf "%a" Relation.pp r) rel_gen in
  [
    Test.make ~name:"distinct idempotent" ~count:100 arb_rel (fun r ->
        let d = Algebra.distinct r in
        Relation.equal_contents d (Algebra.distinct d));
    Test.make ~name:"union cardinality bounds" ~count:100 (pair arb_rel arb_rel)
      (fun (a, b) ->
        let u = Relation.cardinality (Algebra.union a b) in
        u >= max (Relation.cardinality a) (Relation.cardinality b)
        && u <= Relation.cardinality a + Relation.cardinality b);
    Test.make ~name:"difference then intersect empty" ~count:100 (pair arb_rel arb_rel)
      (fun (a, b) -> Relation.cardinality (Algebra.intersect (Algebra.difference a b) b) = 0);
    Test.make ~name:"natural self join keeps tuples" ~count:100 arb_rel (fun r ->
        Relation.equal_sets (Algebra.distinct (Algebra.natural_join r r)) (Algebra.distinct r));
    Test.make ~name:"project to all columns preserves" ~count:100 arb_rel (fun r ->
        Relation.equal_sets (Algebra.project r [ "a"; "b" ]) r);
  ]

(* Columnar durability properties: the canonical byte format round-trips
   exactly across arbitrary insert/remove/compact histories, and any
   single flipped bit is always rejected — never silently loaded. *)
let columnar_qcheck_tests =
  let open QCheck in
  let module CS = Dd_relational.Column_store in
  let op_gen =
    (* 0 = insert, 1 = remove, 2 = compact *)
    Gen.(pair (0 -- 9) (pair (0 -- 12) (0 -- 3)))
  in
  let store_gen =
    Gen.map
      (fun ops ->
        let cs = CS.create ab_schema in
        List.iter
          (fun (kind, (a, bv)) ->
            let tup = [| i a; s (string_of_int bv) |] in
            if kind < 6 then CS.insert cs tup
            else if kind < 9 then ignore (CS.remove cs tup)
            else CS.compact cs)
          ops;
        cs)
      (Gen.list_size Gen.(0 -- 60) op_gen)
  in
  let arb_store =
    make ~print:(fun cs -> Format.asprintf "%a" CS.pp cs) store_gen
  in
  [
    Test.make ~name:"columnar bytes round-trip any history" ~count:100 arb_store
      (fun cs ->
        match CS.of_bytes ab_schema (CS.to_bytes cs) with
        | Error _ -> false
        | Ok back ->
          CS.audit back = Ok ()
          && CS.cardinality back = CS.cardinality cs
          && CS.total_count back = CS.total_count cs
          && CS.fold (fun tup n ok -> ok && CS.count back tup = n) cs true
          (* round-trip is canonical: serializing again is bit-identical *)
          && CS.to_bytes back = CS.to_bytes cs);
    Test.make ~name:"columnar single bit flip always detected" ~count:200
      (pair arb_store (pair small_nat small_nat))
      (fun (cs, (byte_seed, bit)) ->
        let bytes = Bytes.of_string (CS.to_bytes cs) in
        let pos = byte_seed mod Bytes.length bytes in
        Bytes.set bytes pos
          (Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl (bit mod 8))));
        match CS.of_bytes ab_schema (Bytes.to_string bytes) with
        | Error _ -> true
        | Ok _ -> false);
  ]

let () =
  Alcotest.run "dd_relational"
    [
      ( "value",
        [
          Alcotest.test_case "compare order" `Quick test_value_compare_order;
          Alcotest.test_case "equal/hash" `Quick test_value_equal_hash_consistent;
          Alcotest.test_case "conforms" `Quick test_value_conforms;
          Alcotest.test_case "extractors" `Quick test_value_extractors;
          Alcotest.test_case "to_string" `Quick test_value_to_string;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "duplicates" `Quick test_schema_duplicate_rejected;
          Alcotest.test_case "conforms" `Quick test_schema_conforms;
          Alcotest.test_case "project/concat/rename" `Quick test_schema_project_concat_rename;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "equality/hash" `Quick test_tuple_equality_hash;
          Alcotest.test_case "compare" `Quick test_tuple_compare_lexicographic;
          Alcotest.test_case "project/concat" `Quick test_tuple_project_concat;
        ] );
      ( "relation",
        [
          Alcotest.test_case "insert/count" `Quick test_relation_insert_count;
          Alcotest.test_case "remove" `Quick test_relation_remove_semantics;
          Alcotest.test_case "schema enforced" `Quick test_relation_schema_enforced;
          Alcotest.test_case "delete/clear" `Quick test_relation_delete_clear;
          Alcotest.test_case "copy" `Quick test_relation_copy_independent;
          Alcotest.test_case "equality" `Quick test_relation_equal;
          Alcotest.test_case "filter" `Quick test_relation_filter;
          Alcotest.test_case "build_index" `Quick test_relation_build_index;
          Alcotest.test_case "get_index maintained" `Quick test_relation_get_index_maintained;
          Alcotest.test_case "skewed-key removal" `Quick test_relation_index_skewed_key_removal;
          Alcotest.test_case "copy rebuilds index" `Quick test_relation_copy_rebuilds_index;
          Alcotest.test_case "get_index after clear" `Quick test_relation_get_index_cleared;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "project" `Quick test_project_merges_counts;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "natural join" `Quick test_natural_join;
          Alcotest.test_case "join no shared cols" `Quick test_natural_join_no_shared_is_product;
          Alcotest.test_case "equi join" `Quick test_equi_join_disambiguates;
          Alcotest.test_case "union/difference/intersect" `Quick test_union_difference_intersect;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "aggregate count" `Quick test_aggregate_count_group;
          Alcotest.test_case "aggregate sum/min/max/avg" `Quick test_aggregate_sum_min_max_avg;
          Alcotest.test_case "aggregate global" `Quick test_aggregate_global;
          Alcotest.test_case "map rows" `Quick test_map_rows;
          Alcotest.test_case "flat map rows" `Quick test_flat_map_rows;
        ] );
      ( "csv",
        [
          Alcotest.test_case "parse values" `Quick test_csv_parse_values;
          Alcotest.test_case "load with header" `Quick test_csv_load;
          Alcotest.test_case "wrong arity" `Quick test_csv_wrong_arity;
        ] );
      ( "database",
        [
          Alcotest.test_case "catalog" `Quick test_database_catalog;
          Alcotest.test_case "deep copy" `Quick test_database_deep_copy;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
      ( "columnar-durability",
        List.map QCheck_alcotest.to_alcotest columnar_qcheck_tests );
    ]
