(* Tests for the serving layer: snapshot query/index consistency,
   calibrated probabilities, commit- and quarantine-driven publication,
   the degraded-mode health surface, and the concurrent driver — readers
   on their own domains must observe monotone, never-torn epochs while
   the writer walks the degradation ladder under every exercised fault
   point. *)

module Fault = Dd_util.Fault
module Database = Dd_relational.Database
module Tuple = Dd_relational.Tuple
module Value = Dd_relational.Value
module Engine = Dd_core.Engine
module Txn = Dd_core.Txn
module Corpus = Dd_kbc.Corpus
module Pipeline = Dd_kbc.Pipeline
module Calibration = Dd_kbc.Calibration
module Snapshot = Dd_serve.Snapshot
module Server = Dd_serve.Server
module Driver = Dd_serve.Driver

let tiny_config = { Corpus.default with Corpus.docs = 12; relations = 2; entities = 20; seed = 5 }

let quick_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 80;
    inference_chain = 40;
    initial_learning_epochs = 8;
    incremental_learning_epochs = 2;
  }

let make_engine ?(config = tiny_config) () =
  let corpus = Corpus.generate config in
  let db = Database.create () in
  Corpus.load corpus db;
  (corpus, Engine.create ~options:quick_options db (Pipeline.base_program ()))

let bits = Int64.bits_of_float

let identical a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> bits x = bits y) a b

(* --- snapshot queries --------------------------------------------------- *)

let test_snapshot_queries () =
  Fault.reset ();
  let _, engine = make_engine () in
  let snap = Snapshot.build ~epoch:1 ~txn_seq:0 engine in
  (match Snapshot.verify snap with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("fresh snapshot fails audit: " ^ m));
  let reference = Engine.marginals_by_relation engine in
  Alcotest.(check int) "one fact per query tuple" (List.length reference)
    (Snapshot.num_facts snap);
  (* Every engine marginal is served, bit-exact, through the point index. *)
  List.iter
    (fun (relation, tuple, p) ->
      match Snapshot.lookup snap ~relation tuple with
      | Some f -> Alcotest.(check bool) "lookup serves the marginal" true (bits f.Snapshot.probability = bits p)
      | None -> Alcotest.fail ("missing fact " ^ Tuple.to_string tuple))
    reference;
  Alcotest.(check bool) "marginals copy is bit-identical" true
    (identical (Snapshot.marginals snap) (Engine.marginals engine));
  (* Threshold scans agree with a naive filter over the reference list. *)
  List.iter
    (fun thr ->
      let expected = List.length (List.filter (fun (_, _, p) -> p >= thr) reference) in
      Alcotest.(check int)
        (Printf.sprintf "count_above %.2f" thr)
        expected (Snapshot.count_above snap thr);
      let above = Snapshot.above snap thr in
      Alcotest.(check int) "above materializes the same set" expected (List.length above);
      List.iter
        (fun f -> Alcotest.(check bool) "above respects threshold" true (f.Snapshot.probability >= thr))
        above)
    [ 0.0; 0.25; 0.5; 0.9; 1.1 ];
  (* Top-k is the sorted prefix: descending, and never beaten by an
     excluded fact. *)
  let k = min 5 (Snapshot.num_facts snap) in
  let top = Snapshot.top_k snap k in
  Alcotest.(check int) "top_k length" k (List.length top);
  let rec descending = function
    | a :: (b :: _ as rest) ->
      a.Snapshot.probability >= b.Snapshot.probability && descending rest
    | _ -> true
  in
  Alcotest.(check bool) "top_k descending" true (descending top);
  (* ... and is the prefix of the full served enumeration. *)
  let all = Snapshot.top_k snap max_int in
  Alcotest.(check bool) "top_k is a prefix of the full ranking" true
    (List.for_all2
       (fun a b -> a.Snapshot.relation = b.Snapshot.relation && Tuple.compare a.Snapshot.tuple b.Snapshot.tuple = 0)
       top
       (List.filteri (fun i _ -> i < k) all));
  (* Per-relation pools partition the global one. *)
  let per_relation =
    List.fold_left
      (fun acc r -> acc + Array.length (Snapshot.relation_facts snap r))
      0 (Snapshot.relations snap)
  in
  Alcotest.(check int) "relations partition the facts" (Snapshot.num_facts snap) per_relation;
  (* The inverted index finds each fact under each of its string values. *)
  List.iter
    (fun (relation, tuple, _) ->
      Array.iter
        (function
          | Value.Str s ->
            Alcotest.(check bool) ("entity " ^ s ^ " lists the fact") true
              (List.exists
                 (fun f -> f.Snapshot.relation = relation && Tuple.compare f.Snapshot.tuple tuple = 0)
                 (Snapshot.entity_facts snap s))
          | _ -> ())
        tuple)
    reference

let test_snapshot_calibration () =
  Fault.reset ();
  let corpus, engine = make_engine () in
  let snap = Snapshot.build ~truth:corpus.Corpus.truth ~epoch:1 ~txn_seq:0 engine in
  (match Snapshot.verify snap with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("calibrated snapshot fails audit: " ^ m));
  let report =
    match Snapshot.calibration snap with
    | Some r -> r
    | None -> Alcotest.fail "no calibration report despite truth"
  in
  (* The report covers exactly the predictions (evidence facts excluded). *)
  let predictions =
    List.length (List.filter (fun f -> not f.Snapshot.evidence) (Snapshot.top_k snap max_int))
  in
  Alcotest.(check int) "report total = prediction count" predictions report.Calibration.total;
  (* Every fact's calibrated probability is its bucket's empirical
     precision (or the raw marginal in an empty bucket). *)
  List.iter
    (fun f ->
      match Snapshot.calibrated_bucket snap f.Snapshot.probability with
      | None -> Alcotest.fail "no bucket despite calibration"
      | Some b ->
        let expected =
          if b.Calibration.count = 0 then f.Snapshot.probability
          else b.Calibration.empirical_precision
        in
        Alcotest.(check (float 0.0)) "calibrated = bucket precision" expected f.Snapshot.calibrated)
    (Snapshot.top_k snap max_int)

(* --- server publication ------------------------------------------------- *)

let test_server_publishes_on_commit () =
  Fault.reset ();
  let _, engine = make_engine () in
  let txn = Txn.create engine in
  let server = Server.create txn in
  Alcotest.(check int) "initial epoch" 1 (Snapshot.epoch (Server.current server));
  (match Txn.apply txn (Pipeline.update_of Pipeline.FE1) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Txn.error_message e));
  let h = Server.health server in
  Alcotest.(check int) "commit published a new epoch" 2 h.Server.epoch;
  Alcotest.(check int) "snapshot carries the commit seq" 1 h.Server.txn_seq;
  Alcotest.(check int) "served state is current" 0 h.Server.staleness_commits;
  Alcotest.(check int) "one swap" 1 h.Server.swaps;
  Alcotest.(check bool) "not degraded" true (h.Server.degraded = None);
  Alcotest.(check bool) "served marginals = engine marginals" true
    (identical (Snapshot.marginals (Server.current server)) (Engine.marginals (Txn.engine txn)));
  (* Typed queries bump their own counters. *)
  let relation = Pipeline.query_relation in
  ignore (Server.top_k server 3);
  ignore (Server.count_above server ~relation 0.5);
  ignore (Server.above server 0.9);
  ignore (Server.entity_facts server "nobody");
  ignore (Server.read server Snapshot.num_facts);
  (match Snapshot.top_k (Server.current server) 1 with
  | [ f ] -> ignore (Server.lookup server ~relation:f.Snapshot.relation f.Snapshot.tuple)
  | _ -> Alcotest.fail "no facts served");
  let c = (Server.health server).Server.counters in
  Alcotest.(check int) "lookup counter" 1 c.Server.lookups;
  Alcotest.(check int) "scan counter" 2 c.Server.scans;
  Alcotest.(check int) "top-k counter" 1 c.Server.top_ks;
  Alcotest.(check int) "entity counter" 1 c.Server.entities;
  Alcotest.(check int) "generic counter" 1 c.Server.generic

let test_server_degradation_surface () =
  (* Observers run in registration order, so a probe registered after the
     server sees the health surface exactly as readers would at each
     ladder event. *)
  Fault.reset ();
  let _, engine = make_engine () in
  let txn = Txn.create engine in
  let server = Server.create txn in
  let seen = ref [] in
  Txn.on_event txn (fun event ->
      let h = Server.health server in
      match event with
      | Txn.Degraded _ -> seen := ("degraded:" ^ Option.value ~default:"?" h.Server.degraded) :: !seen
      | Txn.Committed _ -> seen := "committed" :: !seen
      | Txn.Quarantined _ -> seen := "quarantined" :: !seen);
  Fault.arm "engine.apply_update.post_learning" (Fault.Nth 1);
  (match Txn.apply txn (Pipeline.update_of Pipeline.FE1) with
  | Ok outcome -> Alcotest.(check bool) "recovered via retry" true (outcome.Txn.rung = Txn.Retry 1)
  | Error e -> Alcotest.fail (Txn.error_message e));
  Fault.reset ();
  (match List.rev !seen with
  | [ degraded; "committed" ] ->
    Alcotest.(check bool) "retry rung was visible while degraded" true
      (String.length degraded > String.length "degraded:"
      && degraded <> "degraded:?")
  | events -> Alcotest.fail ("unexpected event trail: " ^ String.concat ", " events));
  Alcotest.(check bool) "degradation cleared after commit" true
    ((Server.health server).Server.degraded = None)

let test_server_quarantine_republishes () =
  (* A poison update walks the whole ladder (replacing the engine at the
     rerun rung) and is quarantined; the server must re-publish from the
     rolled-back engine so served state still matches the live one. *)
  Fault.reset ();
  let _, engine = make_engine () in
  Fault.reset ();
  Fault.seed 42;
  Fault.arm "engine.apply_update.post_ground" (Fault.Probability 1.0);
  let txn = Txn.create engine in
  let server = Server.create txn in
  (match Txn.apply txn (Pipeline.update_of Pipeline.FE1) with
  | Ok _ -> Alcotest.fail "poison update committed"
  | Error _ -> ());
  Fault.reset ();
  let h = Server.health server in
  Alcotest.(check int) "quarantine counted" 1 h.Server.quarantined;
  Alcotest.(check int) "quarantine republished" 2 h.Server.epoch;
  Alcotest.(check bool) "rerun replaced the engine" true (Txn.engine txn != engine);
  Alcotest.(check bool) "served marginals track the replaced engine" true
    (identical (Snapshot.marginals (Server.current server)) (Engine.marginals (Txn.engine txn)))

(* --- concurrent driver -------------------------------------------------- *)

let check_readers label (report : Driver.report) =
  Array.iteri
    (fun i r ->
      let tag = Printf.sprintf "%s: reader %d" label i in
      Alcotest.(check bool) (tag ^ " read something") true (r.Driver.reads > 0);
      Alcotest.(check bool) (tag ^ " epochs monotone") true r.Driver.monotone;
      Alcotest.(check bool) (tag ^ " audited at least once") true (r.Driver.verifies > 0);
      Alcotest.(check (list string)) (tag ^ " no torn reads") [] r.Driver.verify_failures)
    report.Driver.readers;
  Alcotest.(check bool) (label ^ ": served = engine, bit-identical") true
    report.Driver.final_identical

let test_driver_clean_stream () =
  Fault.reset ();
  let corpus, engine = make_engine () in
  let txn, server, report =
    Driver.run ~readers:3 ~verify_every:16 ~truth:corpus.Corpus.truth engine Pipeline.all_rule_ids
  in
  List.iter
    (fun step ->
      match step.Pipeline.step_result with
      | Ok _ -> ()
      | Error e ->
        Alcotest.fail
          (Pipeline.rule_id_to_string step.Pipeline.step_rule ^ " quarantined: "
          ^ Txn.error_message e))
    report.Driver.steps;
  check_readers "clean" report;
  let h = report.Driver.health in
  Alcotest.(check int) "six commits" 6 h.Server.writer_commits;
  Alcotest.(check int) "epoch = initial + commits" 7 h.Server.epoch;
  Alcotest.(check int) "nothing stale after drain" 0 h.Server.staleness_commits;
  Alcotest.(check bool) "no quarantine" true (h.Server.quarantined = 0);
  Alcotest.(check bool) "swap latency recorded" true (h.Server.max_swap_ms > 0.0);
  Alcotest.(check bool) "served calibration present" true
    (Snapshot.calibration (Server.current server) <> None);
  Alcotest.(check int) "no dead letters" 0 (List.length (Txn.dead_letters txn))

(* The update path's exercised fault points, discovered by a clean apply
   (same approach as the txn ladder sweep). *)
let exercised_points () =
  Fault.reset ();
  let _, engine = make_engine () in
  let txn = Txn.create engine in
  Fault.reset ();
  (match Txn.apply txn (Pipeline.update_of Pipeline.FE1) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Txn.error_message e));
  let points = List.filter (fun n -> Fault.hits n > 0) (Fault.registered ()) in
  Fault.reset ();
  points

let test_driver_fault_sweep () =
  let points = exercised_points () in
  Alcotest.(check bool) "several points to sweep" true (List.length points >= 4);
  List.iter
    (fun point ->
      Fault.reset ();
      let _, engine = make_engine () in
      Fault.reset ();
      Fault.arm point (Fault.Nth 1);
      let _, _, report = Driver.run ~readers:2 ~verify_every:8 engine [ Pipeline.FE1 ] in
      Alcotest.(check int) (point ^ " fired") 1 (Fault.fired point);
      Fault.reset ();
      (match report.Driver.steps with
      | [ { Pipeline.step_result = Ok outcome; _ } ] ->
        Alcotest.(check bool) (point ^ " recovered via retry") true
          (outcome.Txn.rung = Txn.Retry 1)
      | _ -> Alcotest.fail (point ^ ": expected one committed step"));
      check_readers point report;
      Alcotest.(check int) (point ^ " one commit, one new epoch") 2
        report.Driver.health.Server.epoch)
    points

let test_driver_quarantine_stream () =
  (* Poison the whole stream: every update fails its first attempt and
     the ladder is capped at rollback-only, so each step quarantines.
     Readers must still never see a torn or non-monotone snapshot, and
     the final served state must track the (rolled back) engine. *)
  Fault.reset ();
  let _, engine = make_engine () in
  Fault.reset ();
  Fault.seed 42;
  Fault.arm "engine.apply_update.post_ground" (Fault.Probability 1.0);
  let options =
    { Txn.default_options with Txn.max_retries = 0; allow_rematerialize = false; allow_rerun = false }
  in
  let txn, _, report =
    Driver.run ~readers:2 ~verify_every:8 ~txn_options:options engine [ Pipeline.FE1; Pipeline.I1 ]
  in
  Fault.reset ();
  List.iter
    (fun step ->
      match step.Pipeline.step_result with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "poison step committed")
    report.Driver.steps;
  check_readers "quarantine" report;
  let h = report.Driver.health in
  Alcotest.(check int) "both steps quarantined" 2 h.Server.quarantined;
  Alcotest.(check int) "republished per quarantine" 3 h.Server.epoch;
  Alcotest.(check int) "no commits" 0 h.Server.writer_commits;
  Alcotest.(check int) "two dead letters" 2 (List.length (Txn.dead_letters txn))

(* --- properties ---------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:6 ~name:"snapshot marginals, top-k and calibration are mutually consistent"
      (pair (int_range 1 1000) (int_range 0 100))
      (fun (seed, thr_pct) ->
        Fault.reset ();
        let config = { tiny_config with Corpus.seed = seed; docs = 10 } in
        let corpus, engine = make_engine ~config () in
        let snap = Snapshot.build ~truth:corpus.Corpus.truth ~epoch:1 ~txn_seq:0 engine in
        let facts = Snapshot.top_k snap max_int in
        let thr = float_of_int thr_pct /. 100.0 in
        (* The full structural audit holds... *)
        Snapshot.verify snap = Ok ()
        (* ...top-k enumerates every fact exactly once, in the served
           order, agreeing with the marginals array... *)
        && List.length facts = Snapshot.num_facts snap
        && List.for_all
             (fun f ->
               match Snapshot.lookup snap ~relation:f.Snapshot.relation f.Snapshot.tuple with
               | Some f' -> bits f'.Snapshot.probability = bits f.Snapshot.probability
               | None -> false)
             facts
        (* ...threshold scans agree with a naive count over top-k... *)
        && Snapshot.count_above snap thr
           = List.length (List.filter (fun f -> f.Snapshot.probability >= thr) facts)
        && List.length (Snapshot.above snap thr) = Snapshot.count_above snap thr
        (* ...and calibration covers exactly the predictions, with each
           fact calibrated to its own bucket's precision. *)
        &&
        match Snapshot.calibration snap with
        | None -> false
        | Some report ->
          report.Calibration.total
          = List.length (List.filter (fun f -> not f.Snapshot.evidence) facts)
          && List.for_all
               (fun f ->
                 match Snapshot.calibrated_bucket snap f.Snapshot.probability with
                 | None -> false
                 | Some b ->
                   bits f.Snapshot.calibrated
                   = bits
                       (if b.Calibration.count = 0 then f.Snapshot.probability
                        else b.Calibration.empirical_precision))
               facts);
  ]

let () =
  Alcotest.run "dd_serve"
    [
      ( "snapshot",
        [
          Alcotest.test_case "queries vs reference marginals" `Quick test_snapshot_queries;
          Alcotest.test_case "calibrated probabilities" `Quick test_snapshot_calibration;
        ] );
      ( "server",
        [
          Alcotest.test_case "commit publishes" `Quick test_server_publishes_on_commit;
          Alcotest.test_case "degradation surface" `Quick test_server_degradation_surface;
          Alcotest.test_case "quarantine republishes" `Quick test_server_quarantine_republishes;
        ] );
      ( "driver",
        [
          Alcotest.test_case "clean stream, concurrent readers" `Quick test_driver_clean_stream;
          Alcotest.test_case "fault sweep over exercised points" `Slow test_driver_fault_sweep;
          Alcotest.test_case "quarantined stream" `Quick test_driver_quarantine_stream;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
