(* Tests for the durability-hardening stack: the scrub repair ladder end
   to end (corrupted columnar table healed in place, corrupted table
   rebuilt from a row mirror, corrupted checkpoint version quarantined
   and re-published), the crash-consistency soak harness over both the
   bare kbc loop and the full ingest→txn→serve loop, and the health
   surface's scrub counters. *)

module Database = Dd_relational.Database
module Relation = Dd_relational.Relation
module Column_store = Dd_relational.Column_store
module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Txn = Dd_core.Txn
module Fault = Dd_util.Fault
module Fault_file = Dd_util.Fault_file
module Corpus = Dd_kbc.Corpus
module Pipeline = Dd_kbc.Pipeline
module Checkpoint = Dd_kbc.Checkpoint
module Recovery = Dd_kbc.Recovery
module Scrub = Dd_kbc.Scrub
module Soak = Dd_kbc.Soak
module Source = Dd_ingest.Source
module Soak_driver = Dd_ingest.Soak_driver
module Server = Dd_serve.Server
module Snapshot = Dd_serve.Snapshot

let tiny_config = { Corpus.default with Corpus.docs = 12; relations = 2; entities = 20; seed = 5 }

let quick_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 80;
    inference_chain = 40;
    initial_learning_epochs = 8;
    incremental_learning_epochs = 2;
  }

let columnar_options = { quick_options with Engine.relation_backend = Relation.Columnar }

let with_dir name f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) ("dd_soak_" ^ name) in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Array.iter
    (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
    (Sys.readdir dir);
  Fault.reset ();
  Fault_file.reset ();
  Fun.protect ~finally:(fun () ->
      Fault.reset ();
      Fault_file.reset ())
    (fun () -> f dir)

let make_engine ?(options = quick_options) () =
  let corpus = Corpus.generate tiny_config in
  let db = Database.create () in
  Corpus.load corpus db;
  Engine.create ~options db (Pipeline.base_program ())

let flip_byte_in_file path pos =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  let pos = if pos < 0 then len + pos else pos in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let some_columnar_table engine =
  let db = Grounding.database (Engine.grounding engine) in
  let name =
    List.find
      (fun n -> Relation.columnar (Database.find db n) <> None)
      (Database.table_names db)
  in
  (name, Option.get (Relation.columnar (Database.find db name)))

(* --- scrub ------------------------------------------------------------------ *)

let test_scrub_clean () =
  with_dir "scrub_clean" (fun dir ->
      let corpus = Corpus.generate tiny_config in
      let engine = Recovery.run ~options:quick_options ~dir corpus in
      let store = Checkpoint.open_store dir in
      let r = Scrub.run ~engine store in
      Alcotest.(check int) "nothing damaged" 0 (Scrub.damage_found r);
      Alcotest.(check bool) "healthy" true (Scrub.healthy r);
      Alcotest.(check bool) "versions verified" true (r.Scrub.versions_ok >= 1))

let test_scrub_repairs_table () =
  with_dir "scrub_table" (fun dir ->
      let engine = make_engine ~options:columnar_options () in
      let store = Checkpoint.open_store dir in
      Checkpoint.save store engine;
      let name, cs = some_columnar_table engine in
      Column_store.unsafe_corrupt_filter cs;
      Alcotest.(check bool) (name ^ " audit fails after damage") true
        (Result.is_error (Column_store.audit cs));
      let r = Scrub.run ~engine store in
      Alcotest.(check int) "one table repaired in place" 1 r.Scrub.tables_repaired;
      Alcotest.(check (list string)) "nothing unrepaired" [] r.Scrub.unrepaired;
      Alcotest.(check bool) "audit passes after scrub" true
        (Column_store.audit cs = Ok ()))

let test_scrub_rebuilds_table_from_reference () =
  with_dir "scrub_rebuild" (fun dir ->
      let engine = make_engine ~options:columnar_options () in
      let store = Checkpoint.open_store dir in
      Checkpoint.save store engine;
      (* A non-empty table, compacted so the sorted run carries the
         content the damage will hit. *)
      let db = Grounding.database (Engine.grounding engine) in
      let name =
        List.find
          (fun n ->
            let rel = Database.find db n in
            let rows = ref 0 in
            Relation.iter (fun _ _ -> incr rows) rel;
            Relation.columnar rel <> None && !rows > 0)
          (Database.table_names db)
      in
      let cs = Option.get (Relation.columnar (Database.find db name)) in
      Column_store.compact cs;
      (* A row-backend mirror of the intact content, captured before the
         damage — the rung the ladder rebuilds from. *)
      let mirror = Relation.convert Relation.Row (Database.find db name) in
      let contents rel =
        let rows = ref [] in
        Relation.iter (fun tup n -> rows := (Array.to_list tup, n) :: !rows) rel;
        List.sort compare !rows
      in
      let before = contents (Database.find db name) in
      (* Content-plane damage: in-place repair recomputes derived planes
         only, so this must climb to the rebuild rung. *)
      Column_store.unsafe_corrupt_run cs;
      let without_reference = Scrub.run ~engine store in
      Alcotest.(check (list string)) "unrepairable without a reference" [ name ]
        without_reference.Scrub.unrepaired;
      Alcotest.(check bool) "scrub reports unhealthy" false
        (Scrub.healthy without_reference);
      let r =
        Scrub.run ~engine
          ~reference:(fun n -> if n = name then Some mirror else None)
          store
      in
      Alcotest.(check int) "one table rebuilt" 1 r.Scrub.tables_rebuilt;
      Alcotest.(check (list string)) "nothing unrepaired" [] r.Scrub.unrepaired;
      Alcotest.(check bool) "healthy" true (Scrub.healthy r);
      Alcotest.(check bool) "content restored exactly" true
        (contents (Database.find db name) = before))

let test_scrub_quarantines_corrupt_version () =
  with_dir "scrub_version" (fun dir ->
      let engine = make_engine () in
      let store = Checkpoint.open_store dir in
      Checkpoint.save store engine;
      let ckpt = Filename.concat dir (Option.get (Checkpoint.latest store)) in
      flip_byte_in_file ckpt (-40);
      let r = Scrub.run ~engine store in
      Alcotest.(check int) "damaged version quarantined" 1 r.Scrub.versions_quarantined;
      Alcotest.(check bool) "fresh checkpoint republished" true r.Scrub.republished;
      Alcotest.(check bool) "healthy after repair" true (Scrub.healthy r);
      Alcotest.(check bool) "evidence kept" true (Checkpoint.quarantined_files store <> []);
      (* The store must remain fully recoverable, bit for bit. *)
      match Checkpoint.recover (Checkpoint.open_store dir) with
      | Error e -> Alcotest.fail (Checkpoint.error_to_string e)
      | Ok (recovered, _) ->
        Alcotest.(check bool) "recovered marginals identical" true
          (Engine.marginals_by_relation recovered = Engine.marginals_by_relation engine))

let test_scrub_blob_ladder () =
  with_dir "scrub_blob" (fun dir ->
      let engine = make_engine () in
      let store = Checkpoint.open_store dir in
      Checkpoint.save store engine;
      Checkpoint.save_blob store ~name:"canon" "precious subsystem state";
      flip_byte_in_file (Filename.concat dir "BLOB_canon") (-3);
      (* With a live re-encoder the blob is rewritten... *)
      let r =
        Scrub.run ~reblob:(fun _ -> Some "precious subsystem state") store
      in
      Alcotest.(check int) "blob rewritten" 1 r.Scrub.blobs_rewritten;
      Alcotest.(check bool) "blob readable again" true
        (Checkpoint.load_blob store ~name:"canon" = Ok (Some "precious subsystem state"));
      (* ...without one it is quarantined. *)
      flip_byte_in_file (Filename.concat dir "BLOB_canon") (-3);
      let r = Scrub.run store in
      Alcotest.(check int) "blob quarantined" 1 r.Scrub.blobs_quarantined;
      Alcotest.(check bool) "quarantined blob no longer listed" true
        (Checkpoint.blob_names store = []))

let test_scrub_cadence () =
  let c = Scrub.cadence 3 in
  let fires = List.init 9 (fun _ -> Scrub.due c) in
  Alcotest.(check (list bool)) "every third tick"
    [ false; false; true; false; false; true; false; false; true ]
    fires

(* --- soak harness ------------------------------------------------------------ *)

let test_schedule_generation_deterministic () =
  let points = Fault_file.all_points in
  let a = Soak.generate ~points ~seed:7 3 in
  let b = Soak.generate ~points ~seed:7 3 in
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  let c = Soak.generate ~points ~seed:8 3 in
  Alcotest.(check bool) "different seed, different schedule" true (a <> c);
  List.iter
    (fun (arm : Soak.arm) ->
      Alcotest.(check bool) "point from the pool" true (List.mem arm.Soak.point points);
      Alcotest.(check bool) "trigger in range" true
        (arm.Soak.trigger >= 1 && arm.Soak.trigger <= 16))
    a.Soak.arms

let test_shrink_minimizes () =
  (* Synthetic failure predicate: a schedule fails iff it arms the "bad"
     point with trigger >= 4.  The minimal reproduction is a single bad
     arm with the smallest trigger still >= 4. *)
  let run (s : Soak.schedule) =
    let failing = List.exists (fun (a : Soak.arm) -> a.Soak.point = "bad" && a.Soak.trigger >= 4) s.Soak.arms in
    {
      Soak.schedule = s;
      crashes = 0;
      recoveries = 0;
      repairs = 0;
      failure = (if failing then Some "boom" else None);
    }
  in
  let big =
    {
      Soak.sid = 1;
      arms =
        [
          { Soak.point = "benign"; trigger = 17 };
          { Soak.point = "bad"; trigger = 23 };
          { Soak.point = "benign"; trigger = 9 };
        ];
    }
  in
  let small = Soak.shrink ~run big in
  Alcotest.(check int) "one arm left" 1 (List.length small.Soak.arms);
  let arm = List.hd small.Soak.arms in
  Alcotest.(check string) "the culprit" "bad" arm.Soak.point;
  Alcotest.(check bool) "trigger minimized but still failing" true
    (arm.Soak.trigger >= 4 && arm.Soak.trigger <= 5)

let test_soak_kbc () =
  with_dir "soak_kbc" (fun dir ->
      let corpus = Corpus.generate tiny_config in
      let pipeline = Soak.kbc_pipeline ~options:quick_options ~dir corpus in
      let summary = Soak.soak ~seed:11 ~schedules:12 pipeline in
      Alcotest.(check int) "12 schedules ran" 12 summary.Soak.schedules;
      List.iter
        (fun (o : Soak.outcome) ->
          Alcotest.failf "schedule %d failed: %s" o.Soak.schedule.Soak.sid
            (Option.value ~default:"?" o.Soak.failure))
        summary.Soak.failures;
      Alcotest.(check bool) "some schedules actually crashed" true
        (summary.Soak.crashed >= 1))

let test_soak_kbc_engine_points () =
  (* The same property with checkpoint-layer crash points in the pool:
     every recovery path the recovery sweep covers also holds under
     randomized multi-fault schedules. *)
  with_dir "soak_kbc_ckpt" (fun dir ->
      let corpus = Corpus.generate tiny_config in
      let pipeline = Soak.kbc_pipeline ~options:quick_options ~dir corpus in
      let points =
        Fault_file.all_points
        @ [
            "checkpoint.save.pre_rename";
            "checkpoint.save.pre_manifest";
            "checkpoint.log_update.mid_write";
          ]
      in
      let summary = Soak.soak ~seed:23 ~points ~schedules:8 pipeline in
      List.iter
        (fun (o : Soak.outcome) ->
          Alcotest.failf "schedule %d failed: %s" o.Soak.schedule.Soak.sid
            (Option.value ~default:"?" o.Soak.failure))
        summary.Soak.failures)

let test_soak_ingest_serve () =
  with_dir "soak_ingest" (fun dir ->
      let cfg = { Source.default with Source.docs = 10; entities = 6; relations = 2; seed = 5 } in
      let server = ref None in
      let pipeline =
        Soak_driver.pipeline ~options:quick_options
          ~attach:(fun txn -> server := Some (Server.create txn))
          ~verify_snapshot:(fun () ->
            match !server with
            | None -> Error "no server attached"
            | Some srv -> Server.read srv Snapshot.verify)
          ~dir (Source.synthetic cfg)
      in
      let scrubbed = ref 0 in
      let summary =
        Soak.soak ~seed:3 ~schedules:4
          {
            pipeline with
            Soak.scrub =
              (fun () ->
                let r = pipeline.Soak.scrub () in
                (match !server with Some srv -> Server.record_scrub srv r | None -> ());
                incr scrubbed;
                r);
          }
      in
      List.iter
        (fun (o : Soak.outcome) ->
          Alcotest.failf "ingest schedule %d failed: %s" o.Soak.schedule.Soak.sid
            (Option.value ~default:"?" o.Soak.failure))
        summary.Soak.failures;
      Alcotest.(check bool) "scrubs ran" true (!scrubbed >= 1);
      (* The serving health surface saw the scrubs this server survived. *)
      match !server with
      | None -> Alcotest.fail "no server was ever attached"
      | Some srv ->
        let h = Server.health srv in
        Alcotest.(check bool) "snapshot still serves verified state" true
          (Server.read srv Snapshot.verify = Ok ());
        Alcotest.(check bool) "health exposes a scrub verdict" true
          (h.Server.scrubs >= 0 && h.Server.scrub_unrepaired = 0))

let test_record_scrub_counters () =
  with_dir "record_scrub" (fun dir ->
      let engine = make_engine () in
      let txn = Txn.create engine in
      let srv = Server.create txn in
      let store = Checkpoint.open_store dir in
      Checkpoint.save store engine;
      Server.record_scrub srv (Scrub.run ~engine store);
      let ckpt = Filename.concat dir (Option.get (Checkpoint.latest store)) in
      flip_byte_in_file ckpt (-40);
      Server.record_scrub srv (Scrub.run ~engine store);
      let h = Server.health srv in
      Alcotest.(check int) "two passes recorded" 2 h.Server.scrubs;
      Alcotest.(check int) "quarantine counted" 1 h.Server.scrub_quarantined;
      Alcotest.(check int) "nothing unrepaired" 0 h.Server.scrub_unrepaired;
      Alcotest.(check bool) "last verdict healthy" true
        (h.Server.last_scrub_healthy = Some true))

(* --- io fault-point coverage --------------------------------------------------- *)

let write_side_points =
  [
    "io.atomic.torn_write";
    "io.atomic.bit_flip";
    "io.atomic.dropped_fsync";
    "io.atomic.rename_before_flush";
    "io.wal.append_torn";
  ]

let test_sweep_covers_io_points () =
  with_dir "sweep_io" (fun dir ->
      let corpus = Corpus.generate tiny_config in
      let base, outcomes = Recovery.sweep ~options:quick_options ~dir corpus in
      let exercised = List.map fst base.Recovery.exercised in
      List.iter
        (fun p ->
          Alcotest.(check bool) (p ^ " exercised by the pipeline") true
            (List.mem p exercised))
        write_side_points;
      (* And each exercised io point produced a bit-identical recovery. *)
      List.iter
        (fun (o : Recovery.outcome) ->
          if String.length o.Recovery.point > 3 && String.sub o.Recovery.point 0 3 = "io." then begin
            Alcotest.(check bool) (o.Recovery.point ^ " fired") true
              (o.Recovery.crashed || o.Recovery.latent);
            Alcotest.(check (float 0.0)) (o.Recovery.point ^ " jaccard") 1.0
              o.Recovery.agreement.Dd_kbc.Quality.high_conf_jaccard;
            Alcotest.(check (float 0.0)) (o.Recovery.point ^ " max diff") 0.0
              o.Recovery.agreement.Dd_kbc.Quality.max_diff
          end)
        outcomes)

let test_read_short_detected () =
  (* io.read.short never fires during a write-only run, so the sweep
     can't reach it; arm it across a recovery instead.  The short read
     truncates the newest checkpoint mid-load; the CRC must catch it, the
     version is quarantined, and recovery falls back to the previous
     version — never serving the torn bytes. *)
  with_dir "read_short" (fun dir ->
      let engine = make_engine () in
      let store = Checkpoint.open_store dir in
      Checkpoint.save store engine;
      ignore (Checkpoint.apply_update store engine (Pipeline.update_of Pipeline.A1));
      Checkpoint.save store engine;
      Checkpoint.abandon store;
      Fault.arm "io.read.short" (Fault.Nth 1);
      let result = Checkpoint.recover (Checkpoint.open_store dir) in
      let fired = Fault.fired "io.read.short" > 0 in
      Fault.disarm "io.read.short";
      Alcotest.(check bool) "short read fired" true fired;
      match result with
      | Error e -> Alcotest.fail (Checkpoint.error_to_string e)
      | Ok (recovered, _) ->
        Alcotest.(check bool) "recovered marginals identical" true
          (Engine.marginals_by_relation recovered = Engine.marginals_by_relation engine);
        Alcotest.(check bool) "torn version quarantined" true
          (Checkpoint.quarantined_files (Checkpoint.open_store dir) <> []))

let () =
  Alcotest.run "dd_soak"
    [
      ( "scrub",
        [
          Alcotest.test_case "clean store" `Quick test_scrub_clean;
          Alcotest.test_case "repairs corrupt table" `Quick test_scrub_repairs_table;
          Alcotest.test_case "rebuilds from reference" `Quick
            test_scrub_rebuilds_table_from_reference;
          Alcotest.test_case "quarantines corrupt version" `Quick
            test_scrub_quarantines_corrupt_version;
          Alcotest.test_case "blob ladder" `Quick test_scrub_blob_ladder;
          Alcotest.test_case "cadence" `Quick test_scrub_cadence;
        ] );
      ( "soak",
        [
          Alcotest.test_case "schedules deterministic" `Quick
            test_schedule_generation_deterministic;
          Alcotest.test_case "shrink minimizes" `Quick test_shrink_minimizes;
          Alcotest.test_case "kbc io faults" `Slow test_soak_kbc;
          Alcotest.test_case "kbc io+checkpoint faults" `Slow test_soak_kbc_engine_points;
          Alcotest.test_case "ingest+serve" `Slow test_soak_ingest_serve;
          Alcotest.test_case "health counters" `Quick test_record_scrub_counters;
        ] );
      ( "io-points",
        [
          Alcotest.test_case "sweep covers io writes" `Slow test_sweep_covers_io_points;
          Alcotest.test_case "short read detected" `Quick test_read_short_detected;
        ] );
    ]
