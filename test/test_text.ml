(* Tests for Dd_text: tokenizer, dictionary mention finder and feature
   extractors — and the raw-document loader built on them in Dd_kbc. *)

module Tokenizer = Dd_text.Tokenizer
module Mention_finder = Dd_text.Mention_finder
module Features = Dd_text.Features
module Nlp_load = Dd_kbc.Nlp_load
module Database = Dd_relational.Database
module Relation = Dd_relational.Relation

(* --- tokenizer ------------------------------------------------------------ *)

let texts s = Tokenizer.token_texts (Tokenizer.tokenize s)

let test_tokenize_words () =
  Alcotest.(check (list string)) "words" [ "a"; "b"; "cd" ] (texts "a b  cd")

let test_tokenize_punctuation () =
  Alcotest.(check (list string)) "punct split" [ "Hi"; ","; "Bob"; "." ] (texts "Hi, Bob.")

let test_tokenize_offsets () =
  let tokens = Tokenizer.tokenize "ab  cd" in
  let second = List.nth tokens 1 in
  Alcotest.(check int) "start" 4 second.Tokenizer.start_offset;
  Alcotest.(check int) "end" 6 second.Tokenizer.end_offset;
  Alcotest.(check int) "index" 1 second.Tokenizer.index;
  (* Offsets slice back to the token text. *)
  Alcotest.(check string) "slice" "cd" (String.sub "ab  cd" 4 2)

let test_tokenize_empty () =
  Alcotest.(check (list string)) "empty" [] (texts "");
  Alcotest.(check (list string)) "spaces" [] (texts "   ")

let test_sentences_split () =
  let s = Tokenizer.sentences "One two. Three four! Five" in
  Alcotest.(check (list string)) "three sentences" [ "One two."; "Three four!"; "Five" ]
    (List.map snd s);
  (* Offsets point at the sentence starts in the original. *)
  Alcotest.(check int) "second offset" 9 (fst (List.nth s 1))

let test_sentences_no_split_inside_word () =
  (* A period not followed by whitespace (e.g. decimals) keeps going. *)
  let s = Tokenizer.sentences "pi is 3.14 ok. done" in
  Alcotest.(check int) "two sentences" 2 (List.length s)

let test_normalize () =
  Alcotest.(check string) "lowercase" "obama" (Tokenizer.normalize "Obama");
  Alcotest.(check string) "strip edges" "x1" (Tokenizer.normalize "(x1),");
  Alcotest.(check string) "all punct" "" (Tokenizer.normalize "..!")

let test_slice () =
  let tokens = Tokenizer.tokenize "a b c d" in
  Alcotest.(check (list string)) "middle" [ "b"; "c" ]
    (Tokenizer.token_texts (Tokenizer.slice tokens 1 3))

(* --- mention finder ---------------------------------------------------------- *)

let people = [ "Barack Obama"; "Michelle Obama"; "Obama"; "Angela Merkel" ]

let test_find_single_token () =
  let dict = Mention_finder.dictionary [ "Merkel" ] in
  let found = Mention_finder.find_in_sentence dict "Chancellor Merkel spoke" in
  Alcotest.(check int) "one" 1 (List.length found);
  Alcotest.(check string) "surface" "Merkel" (List.hd found).Mention_finder.surface

let test_find_longest_match () =
  (* "Barack Obama" must win over the shorter "Obama". *)
  let dict = Mention_finder.dictionary people in
  let found = Mention_finder.find_in_sentence dict "Barack Obama met Angela Merkel" in
  Alcotest.(check (list string)) "two mentions" [ "Barack Obama"; "Angela Merkel" ]
    (List.map (fun m -> m.Mention_finder.surface) found)

let test_find_case_insensitive () =
  let dict = Mention_finder.dictionary [ "Barack Obama" ] in
  let found = Mention_finder.find_in_sentence dict "BARACK OBAMA waved" in
  Alcotest.(check int) "found" 1 (List.length found);
  (* Surface preserves the original casing. *)
  Alcotest.(check string) "surface" "BARACK OBAMA" (List.hd found).Mention_finder.surface

let test_find_no_overlap () =
  let dict = Mention_finder.dictionary [ "a b"; "b c" ] in
  let found = Mention_finder.find_in_sentence dict "a b c" in
  Alcotest.(check (list string)) "greedy left-to-right" [ "a b" ]
    (List.map (fun m -> m.Mention_finder.surface) found)

let test_find_token_spans () =
  let dict = Mention_finder.dictionary [ "Barack Obama" ] in
  let found = Mention_finder.find_in_sentence dict "today Barack Obama spoke" in
  let m = List.hd found in
  Alcotest.(check int) "first token" 1 m.Mention_finder.first_token;
  Alcotest.(check int) "last token" 2 m.Mention_finder.last_token

let test_add_name_after_build () =
  let dict = Mention_finder.dictionary [] in
  Alcotest.(check bool) "new" true (Mention_finder.add_name dict "New Entity");
  let found = Mention_finder.find_in_sentence dict "the New Entity appeared" in
  Alcotest.(check int) "found" 1 (List.length found)

let test_dictionary_dedups_names () =
  (* Regression: names colliding under case normalization are stored once. *)
  let dict = Mention_finder.dictionary [ "Obama"; "OBAMA"; "obama."; "Obama" ] in
  Alcotest.(check int) "one entry" 1 (Mention_finder.size dict);
  Alcotest.(check bool) "duplicate rejected" false (Mention_finder.add_name dict "oBaMa");
  Alcotest.(check bool) "fresh accepted" true (Mention_finder.add_name dict "Merkel");
  Alcotest.(check bool) "then duplicate" false (Mention_finder.add_name dict "MERKEL");
  Alcotest.(check int) "two entries" 2 (Mention_finder.size dict);
  Alcotest.(check bool) "mem normalized" true (Mention_finder.mem dict "OBAMA");
  Alcotest.(check bool) "mem fresh" false (Mention_finder.mem dict "Biden");
  (* Still exactly one mention per occurrence. *)
  let found = Mention_finder.find_in_sentence dict "Obama met OBAMA" in
  Alcotest.(check int) "no duplicate matches" 2 (List.length found)

let test_add_name_rejects_empty () =
  let dict = Mention_finder.dictionary [ "..."; "!!" ] in
  Alcotest.(check int) "nothing stored" 0 (Mention_finder.size dict);
  Alcotest.(check bool) "empty rejected" false (Mention_finder.add_name dict "");
  Alcotest.(check bool) "punct-only rejected" false (Mention_finder.add_name dict "?!")

let test_normalize_name () =
  Alcotest.(check string) "case+spacing" "barack obama"
    (Mention_finder.normalize_name "  BARACK   Obama. ");
  Alcotest.(check string) "empty" "" (Mention_finder.normalize_name "..!")

let test_find_empty_document () =
  let dict = Mention_finder.dictionary people in
  Alcotest.(check int) "empty string" 0 (List.length (Mention_finder.find_in_sentence dict ""));
  Alcotest.(check int) "whitespace" 0 (List.length (Mention_finder.find_in_sentence dict "   "));
  Alcotest.(check (list string)) "no sentences" [] (List.map snd (Tokenizer.sentences ""))

let test_find_punctuation_only () =
  let dict = Mention_finder.dictionary people in
  Alcotest.(check int) "punct only" 0 (List.length (Mention_finder.find_in_sentence dict "... !! ,"));
  (* A punctuation-only sentence inside a document tokenizes but yields
     no mentions. *)
  List.iter
    (fun (_, sentence) ->
      ignore (Mention_finder.find dict (Tokenizer.tokenize sentence)))
    (Tokenizer.sentences "... ! Obama spoke. ?!")

let test_find_overlapping_multitoken () =
  (* Chained overlapping multi-token names: greedy longest from the left,
     then continue after the match. *)
  let dict = Mention_finder.dictionary [ "a b c"; "b c d"; "c d"; "d e" ] in
  let found = Mention_finder.find_in_sentence dict "a b c d e" in
  Alcotest.(check (list string)) "left longest then rest" [ "a b c"; "d e" ]
    (List.map (fun m -> m.Mention_finder.surface) found);
  (* A name that is a prefix of a longer one: longest wins at the site. *)
  let dict = Mention_finder.dictionary [ "New York"; "New York City" ] in
  let found = Mention_finder.find_in_sentence dict "in New York City today" in
  Alcotest.(check (list string)) "longest wins" [ "New York City" ]
    (List.map (fun m -> m.Mention_finder.surface) found)

(* --- features ------------------------------------------------------------------ *)

let pair_ctx sentence =
  let dict = Mention_finder.dictionary [ "Barack Obama"; "Michelle Obama" ] in
  let tokens = Tokenizer.tokenize sentence in
  match Mention_finder.find dict tokens with
  | [ m1; m2 ] -> Features.{ tokens; m1; m2 }
  | other -> Alcotest.failf "expected 2 mentions, found %d" (List.length other)

let test_phrase_between () =
  let ctx = pair_ctx "Barack Obama and his wife Michelle Obama" in
  Alcotest.(check (option string)) "phrase" (Some "and_his_wife")
    (Features.phrase_between ctx)

let test_phrase_between_empty_gap () =
  let ctx = pair_ctx "Barack Obama Michelle Obama" in
  Alcotest.(check (option string)) "no gap" None (Features.phrase_between ctx)

let test_phrase_between_too_long () =
  let ctx =
    pair_ctx "Barack Obama one two three four five six seven Michelle Obama"
  in
  Alcotest.(check (option string)) "capped" None (Features.phrase_between ~max_tokens:6 ctx)

let test_bag_of_words () =
  let ctx = pair_ctx "Barack Obama and his wife Michelle Obama" in
  Alcotest.(check (list string)) "bow" [ "bow:and"; "bow:his"; "bow:wife" ]
    (Features.bag_of_words_between ctx)

let test_window_features () =
  let ctx = pair_ctx "yesterday Barack Obama met Michelle Obama gladly" in
  let w = Features.window ctx in
  Alcotest.(check bool) "left" true (List.mem "left:yesterday" w);
  Alcotest.(check bool) "right" true (List.mem "right:gladly" w)

let test_inverted_order () =
  let ctx = pair_ctx "Barack Obama met Michelle Obama" in
  Alcotest.(check (option string)) "in order" None (Features.inverted_order ctx);
  let swapped = Features.{ ctx with m1 = ctx.m2; m2 = ctx.m1 } in
  Alcotest.(check (option string)) "inverted" (Some "inv_order")
    (Features.inverted_order swapped)

let test_distance_bucket () =
  Alcotest.(check string) "adjacent" "dist:adj"
    (Features.mention_distance_bucket (pair_ctx "Barack Obama met Michelle Obama"));
  Alcotest.(check string) "far" "dist:far"
    (Features.mention_distance_bucket
       (pair_ctx "Barack Obama a b c d e f g h Michelle Obama"))

let test_all_features_nonempty () =
  let feats = Features.all_features (pair_ctx "Barack Obama and his wife Michelle Obama") in
  Alcotest.(check bool) "has phrase feature" true
    (List.mem "phrase:and_his_wife" feats);
  Alcotest.(check bool) "has distance" true (List.mem "dist:near" feats)

(* --- nlp load -------------------------------------------------------------------- *)

let test_nlp_load_rows () =
  let db = Database.create () in
  let stats =
    Nlp_load.load_documents db
      ~entity_names:[ "Barack Obama"; "Michelle Obama"; "Angela Merkel" ]
      [ (0, "Barack Obama and his wife Michelle Obama met Angela Merkel.") ]
  in
  Alcotest.(check int) "one sentence" 1 stats.Nlp_load.sentences;
  Alcotest.(check int) "three mentions" 3 stats.Nlp_load.mentions_found;
  (* Three mentions -> three unordered pairs. *)
  Alcotest.(check int) "three pairs" 3 stats.Nlp_load.pairs;
  Alcotest.(check int) "sentence rows" 3 (Relation.cardinality (Database.find db "sentence"));
  Alcotest.(check int) "mention rows" 6 (Relation.cardinality (Database.find db "mention"))

let test_nlp_load_phrase_feature () =
  let db = Database.create () in
  ignore
    (Nlp_load.load_documents db
       ~entity_names:[ "Barack Obama"; "Michelle Obama" ]
       [ (0, "Barack Obama and his wife Michelle Obama smiled.") ]);
  let sentence = Database.find db "sentence" in
  let has_phrase = ref false in
  Relation.iter
    (fun t _ ->
      if Dd_relational.Value.equal t.(2) (Dd_relational.Value.Str "and_his_wife") then
        has_phrase := true)
    sentence;
  Alcotest.(check bool) "phrase extracted" true !has_phrase

let test_nlp_load_sid_continuity () =
  let db = Database.create () in
  let first =
    Nlp_load.load_documents db ~entity_names:[ "A B"; "C D" ] [ (0, "A B saw C D.") ]
  in
  let _second =
    Nlp_load.load_documents ~first_sid:first.Nlp_load.pairs db
      ~entity_names:[ "A B"; "C D" ]
      [ (1, "C D saw A B.") ]
  in
  Alcotest.(check int) "two sentence rows, distinct sids" 2
    (Relation.cardinality (Database.find db "sentence"))

(* --- qcheck properties ------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  let word = Gen.oneofl [ "a"; "b"; "c"; "d"; "e"; "Ab"; "b."; "x1" ] in
  let name = Gen.(map (String.concat " ") (list_size (1 -- 3) word)) in
  let scenario = Gen.(pair (list_size (0 -- 8) name) (list_size (0 -- 15) word)) in
  [
    Test.make ~name:"find never returns overlapping spans" ~count:500 (make scenario)
      (fun (names, words) ->
        let dict = Mention_finder.dictionary names in
        let tokens = Tokenizer.tokenize (String.concat " " words) in
        let n = List.length tokens in
        let mentions = Mention_finder.find dict tokens in
        let rec disjoint_sorted = function
          | (a : Mention_finder.mention) :: (b :: _ as rest) ->
            a.Mention_finder.last_token < b.Mention_finder.first_token && disjoint_sorted rest
          | _ -> true
        in
        List.for_all
          (fun (m : Mention_finder.mention) ->
            0 <= m.Mention_finder.first_token
            && m.Mention_finder.first_token <= m.Mention_finder.last_token
            && m.Mention_finder.last_token < n)
          mentions
        && disjoint_sorted mentions);
    Test.make ~name:"dictionary size counts normalized names" ~count:300
      (make Gen.(list_size (0 -- 12) name))
      (fun names ->
        let dict = Mention_finder.dictionary names in
        let distinct =
          List.sort_uniq compare
            (List.filter (fun k -> k <> "") (List.map Mention_finder.normalize_name names))
        in
        Mention_finder.size dict = List.length distinct
        (* Re-adding anything already given is always a no-op. *)
        && List.for_all (fun n -> not (Mention_finder.add_name dict n)) names);
  ]

let () =
  Alcotest.run "dd_text"
    [
      ( "tokenizer",
        [
          Alcotest.test_case "words" `Quick test_tokenize_words;
          Alcotest.test_case "punctuation" `Quick test_tokenize_punctuation;
          Alcotest.test_case "offsets" `Quick test_tokenize_offsets;
          Alcotest.test_case "empty" `Quick test_tokenize_empty;
          Alcotest.test_case "sentences" `Quick test_sentences_split;
          Alcotest.test_case "decimals" `Quick test_sentences_no_split_inside_word;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "slice" `Quick test_slice;
        ] );
      ( "mentions",
        [
          Alcotest.test_case "single token" `Quick test_find_single_token;
          Alcotest.test_case "longest match" `Quick test_find_longest_match;
          Alcotest.test_case "case insensitive" `Quick test_find_case_insensitive;
          Alcotest.test_case "no overlap" `Quick test_find_no_overlap;
          Alcotest.test_case "token spans" `Quick test_find_token_spans;
          Alcotest.test_case "add name" `Quick test_add_name_after_build;
          Alcotest.test_case "dedup names" `Quick test_dictionary_dedups_names;
          Alcotest.test_case "reject empty names" `Quick test_add_name_rejects_empty;
          Alcotest.test_case "normalize_name" `Quick test_normalize_name;
          Alcotest.test_case "empty document" `Quick test_find_empty_document;
          Alcotest.test_case "punctuation only" `Quick test_find_punctuation_only;
          Alcotest.test_case "overlapping multi-token" `Quick test_find_overlapping_multitoken;
        ] );
      ( "features",
        [
          Alcotest.test_case "phrase between" `Quick test_phrase_between;
          Alcotest.test_case "empty gap" `Quick test_phrase_between_empty_gap;
          Alcotest.test_case "too long" `Quick test_phrase_between_too_long;
          Alcotest.test_case "bag of words" `Quick test_bag_of_words;
          Alcotest.test_case "window" `Quick test_window_features;
          Alcotest.test_case "inverted order" `Quick test_inverted_order;
          Alcotest.test_case "distance bucket" `Quick test_distance_bucket;
          Alcotest.test_case "all features" `Quick test_all_features_nonempty;
        ] );
      ( "nlp_load",
        [
          Alcotest.test_case "rows" `Quick test_nlp_load_rows;
          Alcotest.test_case "phrase feature" `Quick test_nlp_load_phrase_feature;
          Alcotest.test_case "sid continuity" `Quick test_nlp_load_sid_continuity;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
