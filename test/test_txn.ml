(* Tests for the transactional supervisor: budget polling, rollback
   bit-identity, the full degradation ladder under every fault point the
   update path exercises, poison-update quarantine and dead-letter
   replay, plus the fault-coverage meta-test. *)

module Budget = Dd_util.Budget
module Fault = Dd_util.Fault
module Database = Dd_relational.Database
module Serialize = Dd_fgraph.Serialize
module Engine = Dd_core.Engine
module Grounding = Dd_core.Grounding
module Txn = Dd_core.Txn
module Corpus = Dd_kbc.Corpus
module Pipeline = Dd_kbc.Pipeline
module Quality = Dd_kbc.Quality
module Checkpoint = Dd_kbc.Checkpoint

let tiny_config = { Corpus.default with Corpus.docs = 12; relations = 2; entities = 20; seed = 5 }

let quick_options =
  {
    Engine.default_options with
    Engine.materialization_samples = 80;
    inference_chain = 40;
    initial_learning_epochs = 8;
    incremental_learning_epochs = 2;
  }

(* Engines are deterministic: two calls build bit-identical twins. *)
let make_engine ?(options = quick_options) ?docs () =
  let corpus = Corpus.generate tiny_config in
  let db = Database.create () in
  Corpus.load corpus ?docs db;
  (corpus, Engine.create ~options db (Pipeline.base_program ()))

(* The ladder reduced to a single transactional attempt: any failure
   quarantines immediately, leaving the rolled-back engine in place. *)
let rollback_only =
  {
    Txn.default_options with
    Txn.max_retries = 0;
    allow_rematerialize = false;
    allow_rerun = false;
  }

type snap = {
  s_graph : string;
  s_marginals : (string * Dd_relational.Tuple.t * float) list;
  s_stats : Grounding.stats;
  s_kernel_compiles : int;
}

let snapshot engine =
  {
    s_graph = Serialize.to_string (Engine.graph engine);
    s_marginals = Engine.marginals_by_relation engine;
    s_stats = Grounding.stats (Engine.grounding engine);
    s_kernel_compiles = Engine.kernel_compiles engine;
  }

let check_snap label a b =
  Alcotest.(check string) (label ^ ": serialized graph bytes") a.s_graph b.s_graph;
  Alcotest.(check bool) (label ^ ": marginals bit-identical") true (a.s_marginals = b.s_marginals);
  Alcotest.(check bool) (label ^ ": grounding stats") true (a.s_stats = b.s_stats);
  Alcotest.(check int) (label ^ ": kernel compiles") a.s_kernel_compiles b.s_kernel_compiles

(* Fault points proven exercised by some txn test in this binary; the
   meta-test checks this set (plus the recovery-suite allowlist) covers
   every registered point. *)
let covered : (string, unit) Hashtbl.t = Hashtbl.create 32

let note_covered () =
  List.iter
    (fun name -> if Fault.hits name > 0 then Hashtbl.replace covered name ())
    (Fault.registered ())

let apply_ok txn update =
  match Txn.apply txn update with
  | Ok outcome -> outcome
  | Error e -> Alcotest.fail ("unexpected quarantine: " ^ Txn.error_message e)

let apply_err txn update =
  match Txn.apply txn update with
  | Ok _ -> Alcotest.fail "expected quarantine, got Ok"
  | Error e -> e

(* --- budget ------------------------------------------------------------------- *)

let test_budget_ticks () =
  let b = Budget.start (Budget.Ticks 2) in
  Budget.check b "a";
  Budget.check b "b";
  (match Budget.check b "c" with
  | () -> Alcotest.fail "third poll should exceed"
  | exception Budget.Exceeded site -> Alcotest.(check string) "site" "c" site);
  Alcotest.(check bool) "is_exceeded" true (Budget.is_exceeded (Budget.Exceeded "c"));
  let u = Budget.start Budget.Unlimited in
  for _ = 1 to 1000 do
    Budget.check u "never"
  done;
  for _ = 1 to 1000 do
    Budget.check Budget.unlimited "never"
  done

let test_budget_spec_strings () =
  Alcotest.(check string) "unlimited" "unlimited" (Budget.spec_to_string Budget.Unlimited);
  Alcotest.(check bool) "ticks mentions count" true
    (String.length (Budget.spec_to_string (Budget.Ticks 7)) > 0)

(* --- typed grounding errors --------------------------------------------------- *)

let bad_rules_update () =
  (* Head variable [r2] is not bound by the body: malformed by
     construction, deterministically rejected at grounding time. *)
  let open Dd_datalog.Ast in
  let v n = Var n in
  Grounding.rules_update
    [
      Dd_core.Program.Infer
        {
          Dd_core.Program.name = "bad";
          head = atom "q" [ v "r2"; v "m1"; v "m2" ];
          body = [ Pos (atom "q" [ v "r"; v "m1"; v "m2" ]) ];
          guards = [];
          weight = Dd_core.Program.Fixed 1.0;
          semantics = Dd_fgraph.Semantics.Logical;
          populate_head = true;
        };
    ]

let test_grounding_typed_errors () =
  Fault.reset ();
  let _, engine = make_engine () in
  let grounding = Engine.grounding engine in
  (match Grounding.extend_checked grounding (bad_rules_update ()) with
  | Error (`Malformed_delta _) -> ()
  | Error e -> Alcotest.fail ("wrong class: " ^ Grounding.error_message e)
  | Ok _ -> Alcotest.fail "malformed update accepted")

(* --- classification ------------------------------------------------------------ *)

let test_classify () =
  let is_class c e = Txn.classify e = c in
  Alcotest.(check bool) "budget -> timeout" true
    (match Txn.classify (Budget.Exceeded "gibbs") with `Inference_timeout _ -> true | _ -> false);
  Alcotest.(check bool) "injected -> transient" true
    (match Txn.classify (Fault.Injected "x") with `Transient _ -> true | _ -> false);
  Alcotest.(check bool) "invalid_arg -> malformed" true
    (match Txn.classify (Invalid_argument "x") with `Malformed_delta _ -> true | _ -> false);
  Alcotest.(check bool) "failure -> internal" true
    (match Txn.classify (Failure "x") with `Internal _ -> true | _ -> false);
  Alcotest.(check bool) "grounding error passes through" true
    (is_class (`Malformed_delta "m") (Grounding.Error (`Malformed_delta "m")))

(* --- payload encoding ---------------------------------------------------------- *)

let test_payload_roundtrip () =
  let update = Pipeline.update_of Pipeline.FE1 in
  let payload = Txn.encode_update update in
  (match Txn.decode_update payload with
  | Ok u -> Alcotest.(check int) "rule count survives" (List.length update.Grounding.new_rules)
              (List.length u.Grounding.new_rules)
  | Error m -> Alcotest.fail m);
  (* One flipped byte in the marshalled body must fail the CRC. *)
  let b = Bytes.of_string payload in
  let pos = Bytes.length b - 3 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
  (match Txn.decode_update (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt payload decoded");
  (match Txn.decode_update "garbage" with Error _ -> () | Ok _ -> Alcotest.fail "garbage decoded")

(* --- rollback bit-identity ------------------------------------------------------ *)

let test_rollback_bit_identity () =
  Fault.reset ();
  let _, engine = make_engine () in
  let pre = snapshot engine in
  let txn = Txn.create ~options:rollback_only engine in
  Fault.arm "engine.apply_update.post_learning" (Fault.Nth 1);
  (match apply_err txn (Pipeline.update_of Pipeline.FE1) with
  | `Transient _ -> ()
  | e -> Alcotest.fail ("wrong class: " ^ Txn.error_message e));
  note_covered ();
  Fault.reset ();
  Alcotest.(check bool) "no rerun: engine identity kept" true (Txn.engine txn == engine);
  check_snap "rolled back" pre (snapshot engine);
  Alcotest.(check int) "quarantined" 1 (List.length (Txn.dead_letters txn));
  (* Replay on the rolled-back engine is bit-identical to an uninterrupted
     run: rollback restored the PRNG along with the state. *)
  let _, twin = make_engine () in
  let clean = Engine.apply_update twin (Pipeline.update_of Pipeline.FE1) in
  (match Txn.replay txn (List.hd (Txn.dead_letters txn)) with
  | Error e -> Alcotest.fail ("replay failed: " ^ Txn.error_message e)
  | Ok outcome ->
    Alcotest.(check bool) "replay rung is direct" true (outcome.Txn.rung = Txn.Direct);
    Alcotest.(check bool) "replay marginals = uninterrupted run" true
      (clean.Engine.marginals = outcome.Txn.report.Engine.marginals));
  Alcotest.(check int) "dead letter drained" 0 (List.length (Txn.dead_letters txn))

(* --- the ladder under every exercised fault point ------------------------------- *)

let exercised_points () =
  Fault.reset ();
  let _, engine = make_engine () in
  let txn = Txn.create engine in
  Fault.reset ();
  let outcome = apply_ok txn (Pipeline.update_of Pipeline.FE1) in
  let points = List.filter (fun n -> Fault.hits n > 0) (Fault.registered ()) in
  note_covered ();
  Fault.reset ();
  (outcome, points)

let test_ladder_retry_sweep () =
  let baseline, points = exercised_points () in
  Alcotest.(check bool) "update path exercises several points" true (List.length points >= 4);
  Alcotest.(check bool) "clean apply is rung zero" true (baseline.Txn.rung = Txn.Direct);
  List.iter
    (fun point ->
      Fault.reset ();
      let _, engine = make_engine () in
      Fault.reset ();
      Fault.arm point (Fault.Nth 1);
      let txn = Txn.create engine in
      let outcome = apply_ok txn (Pipeline.update_of Pipeline.FE1) in
      note_covered ();
      Alcotest.(check int) (point ^ " fired once") 1 (Fault.fired point);
      Alcotest.(check bool) (point ^ " recovered on first retry") true
        (outcome.Txn.rung = Txn.Retry 1);
      Alcotest.(check int) (point ^ " attempts") 2 outcome.Txn.attempts;
      Alcotest.(check int) (point ^ " one backoff") 1 (List.length outcome.Txn.backoffs_s);
      (* Rollback restored the PRNG, so the retried run is bit-identical
         to the uninterrupted one. *)
      Alcotest.(check bool) (point ^ " marginals = uninterrupted run") true
        (baseline.Txn.report.Engine.marginals = outcome.Txn.report.Engine.marginals);
      Fault.reset ())
    points

let test_ladder_retry_sweep_columnar () =
  (* The same sweep with the engine's database on the columnar backend:
     rollback (journal undo replay into Column_store) must restore the
     engine so exactly that the retried run's marginals equal the ROW
     baseline's — cross-backend bit-identity under faults. *)
  let baseline, points = exercised_points () in
  let columnar_options =
    { quick_options with Engine.relation_backend = Dd_relational.Relation.Columnar }
  in
  List.iter
    (fun point ->
      Fault.reset ();
      let _, engine = make_engine ~options:columnar_options () in
      Fault.reset ();
      Fault.arm point (Fault.Nth 1);
      let txn = Txn.create engine in
      let outcome = apply_ok txn (Pipeline.update_of Pipeline.FE1) in
      note_covered ();
      Alcotest.(check int) (point ^ " fired once") 1 (Fault.fired point);
      Alcotest.(check bool) (point ^ " recovered on first retry") true
        (outcome.Txn.rung = Txn.Retry 1);
      Alcotest.(check bool) (point ^ " marginals = row uninterrupted run") true
        (baseline.Txn.report.Engine.marginals = outcome.Txn.report.Engine.marginals);
      Fault.reset ())
    points

let test_ladder_interrupted_rollback () =
  let baseline, _ = exercised_points () in
  List.iter
    (fun rollback_point ->
      Fault.reset ();
      let _, engine = make_engine () in
      Fault.reset ();
      Fault.arm "engine.apply_update.post_ground" (Fault.Nth 1);
      Fault.arm rollback_point (Fault.Nth 1);
      let txn = Txn.create engine in
      let outcome = apply_ok txn (Pipeline.update_of Pipeline.FE1) in
      note_covered ();
      Alcotest.(check int) (rollback_point ^ " fired") 1 (Fault.fired rollback_point);
      Alcotest.(check bool) (rollback_point ^ " recovered via retry") true
        (outcome.Txn.rung = Txn.Retry 1);
      Alcotest.(check bool) (rollback_point ^ " marginals = uninterrupted run") true
        (baseline.Txn.report.Engine.marginals = outcome.Txn.report.Engine.marginals);
      Fault.reset ())
    [ "engine.txn_rollback.begin"; "engine.txn_rollback.mid_restore" ]

let test_persistent_rollback_fault_suppressed () =
  (* A rollback point armed at probability 1.0 would loop forever without
     the suppressed last resort; the supervisor must still restore the
     engine and walk the ladder. *)
  Fault.reset ();
  let _, engine = make_engine () in
  let pre = snapshot engine in
  Fault.reset ();
  Fault.seed 11;
  Fault.arm "engine.apply_update.post_ground" (Fault.Nth 1);
  Fault.arm "engine.txn_rollback.begin" (Fault.Probability 1.0);
  let txn = Txn.create ~options:rollback_only engine in
  (match apply_err txn (Pipeline.update_of Pipeline.FE1) with
  | `Transient _ -> ()
  | e -> Alcotest.fail ("wrong class: " ^ Txn.error_message e));
  note_covered ();
  Fault.reset ();
  check_snap "suppressed rollback restored state" pre (snapshot engine)

let test_ladder_quarantine () =
  (* A poison fault that fires on every attempt drives the whole ladder:
     direct, retries, rematerialize, rerun — then quarantine.  The
     surviving engine is the rerun-built scratch engine, rolled back to
     its freshly-created state. *)
  Fault.reset ();
  let _, engine = make_engine () in
  let _, twin = make_engine () in
  Fault.reset ();
  Fault.seed 42;
  Fault.arm "engine.apply_update.post_ground" (Fault.Probability 1.0);
  let txn = Txn.create engine in
  (match apply_err txn (Pipeline.update_of Pipeline.FE1) with
  | `Transient _ -> ()
  | e -> Alcotest.fail ("wrong class: " ^ Txn.error_message e));
  Alcotest.(check bool) "rerun rung reached" true (Fault.hits "txn.rerun.pre_create" > 0);
  note_covered ();
  Fault.reset ();
  let final = Txn.engine txn in
  Alcotest.(check bool) "rerun replaced the engine" true (final != engine);
  Alcotest.(check bool) "graph validates" true
    (Dd_fgraph.Graph.validate (Engine.graph final) = Ok ());
  Alcotest.(check bool) "database validates" true
    (Database.validate (Grounding.database (Engine.grounding final)) = Ok ());
  (match Txn.dead_letters txn with
  | [ dl ] ->
    (* direct + 2 retries + rematerialize + rerun *)
    Alcotest.(check int) "attempts walked the whole ladder" 5 dl.Txn.attempts;
    (match Txn.decode_dead_letter dl with
    | Ok u -> Alcotest.(check int) "payload replayable" 1 (List.length u.Grounding.new_rules)
    | Error m -> Alcotest.fail m)
  | dls -> Alcotest.fail (Printf.sprintf "expected 1 dead letter, got %d" (List.length dls)));
  (* The scratch-built engine answers like an untouched twin. *)
  let agreement =
    Quality.compare_marginals
      (Engine.marginals_by_relation final)
      (Engine.marginals_by_relation twin)
  in
  Alcotest.(check (float 0.0)) "high-confidence jaccard" 1.0 agreement.Quality.high_conf_jaccard;
  (* Disarmed, the quarantined update replays cleanly on the scratch
     engine. *)
  (match Txn.replay txn (List.hd (Txn.dead_letters txn)) with
  | Ok outcome -> Alcotest.(check bool) "replay direct" true (outcome.Txn.rung = Txn.Direct)
  | Error e -> Alcotest.fail ("replay failed: " ^ Txn.error_message e));
  Alcotest.(check int) "queue drained" 0 (List.length (Txn.dead_letters txn))

let test_malformed_never_retries () =
  Fault.reset ();
  let _, engine = make_engine () in
  let pre = snapshot engine in
  let txn = Txn.create ~options:rollback_only engine in
  (match apply_err txn (bad_rules_update ()) with
  | `Malformed_delta _ -> ()
  | e -> Alcotest.fail ("wrong class: " ^ Txn.error_message e));
  (match Txn.dead_letters txn with
  | [ dl ] -> Alcotest.(check int) "no retry for malformed" 1 dl.Txn.attempts
  | _ -> Alcotest.fail "expected 1 dead letter");
  check_snap "engine untouched" pre (snapshot engine)

let test_budget_timeout_quarantine () =
  (* A zero-tick budget exhausts at the first DRed poll; the timeout is
     not transient, so the ladder skips retry, fails rematerialize and
     rerun the same way, and quarantines — with a validated engine. *)
  Fault.reset ();
  let options = { quick_options with Engine.step_budget = Budget.Ticks 0 } in
  let corpus, engine = make_engine ~options ~docs:10 () in
  let update = Grounding.data_update (Corpus.doc_delta corpus ~from_doc:10 ~until_doc:12) in
  let txn = Txn.create engine in
  (match apply_err txn update with
  | `Inference_timeout _ -> ()
  | e -> Alcotest.fail ("wrong class: " ^ Txn.error_message e));
  note_covered ();
  let final = Txn.engine txn in
  Alcotest.(check bool) "graph validates" true
    (Dd_fgraph.Graph.validate (Engine.graph final) = Ok ());
  Alcotest.(check int) "quarantined" 1 (List.length (Txn.dead_letters txn));
  (* No retry rung for a deterministic timeout: direct + remat + rerun. *)
  (match Txn.dead_letters txn with
  | [ dl ] -> Alcotest.(check int) "attempts" 3 dl.Txn.attempts
  | _ -> Alcotest.fail "expected 1 dead letter")

(* --- dead-letter persistence through the checkpoint store ----------------------- *)

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) ("dd_txn_" ^ name) in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Array.iter
    (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
    (Sys.readdir dir);
  dir

let test_dead_letter_persistence () =
  Fault.reset ();
  let dir = fresh_dir "deadletters" in
  let store = Checkpoint.open_store dir in
  (* A store that never saved letters reads back as empty, not as an error. *)
  (match Checkpoint.load_dead_letters store with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "phantom letters in a fresh store"
  | Error e -> Alcotest.fail (Checkpoint.error_to_string e));
  (* Quarantine two updates with different error classes. *)
  let _, engine = make_engine () in
  let txn = Txn.create ~options:rollback_only engine in
  (match apply_err txn (bad_rules_update ()) with `Malformed_delta _ -> () | _ -> Alcotest.fail "class");
  Fault.arm "engine.apply_update.post_learning" (Fault.Nth 1);
  (match apply_err txn (Pipeline.update_of Pipeline.FE1) with `Transient _ -> () | _ -> Alcotest.fail "class");
  note_covered ();
  Fault.reset ();
  let letters = Txn.dead_letters txn in
  Alcotest.(check int) "two quarantined" 2 (List.length letters);
  Checkpoint.save_dead_letters store letters;
  (* Bit-exact round trip: seq, attempts, error (class and message), payload. *)
  (match Checkpoint.load_dead_letters store with
  | Ok loaded -> Alcotest.(check bool) "letters round-trip exactly" true (loaded = letters)
  | Error e -> Alcotest.fail (Checkpoint.error_to_string e));
  (* Restore into a fresh supervisor: queue back, sequence advanced, the
     transient letter replays cleanly. *)
  let _, engine2 = make_engine () in
  let txn2 = Txn.create engine2 in
  (match Checkpoint.load_dead_letters store with
  | Ok loaded -> Txn.restore_dead_letters txn2 loaded
  | Error e -> Alcotest.fail (Checkpoint.error_to_string e));
  Alcotest.(check int) "queue restored" 2 (List.length (Txn.dead_letters txn2));
  let transient =
    List.find
      (fun dl -> match dl.Txn.error with `Transient _ -> true | _ -> false)
      (Txn.dead_letters txn2)
  in
  (match Txn.replay txn2 transient with
  | Ok outcome -> Alcotest.(check bool) "replay direct" true (outcome.Txn.rung = Txn.Direct)
  | Error e -> Alcotest.fail ("replay failed: " ^ Txn.error_message e));
  Alcotest.(check int) "replayed letter drained" 1 (List.length (Txn.dead_letters txn2));
  (* New quarantines never reuse a restored sequence number. *)
  (match apply_err txn2 (bad_rules_update ()) with `Malformed_delta _ -> () | _ -> Alcotest.fail "class");
  let seqs = List.map (fun dl -> dl.Txn.seq) (Txn.dead_letters txn2) in
  Alcotest.(check bool) "sequence numbers stay distinct" true
    (List.sort_uniq compare seqs = List.sort compare seqs);
  (* Saving [] clears the persisted queue. *)
  Checkpoint.save_dead_letters store [];
  (match Checkpoint.load_dead_letters store with
  | Ok [] -> ()
  | _ -> Alcotest.fail "clear did not empty the store");
  (* A flipped byte anywhere in a payload fails the CRC gate. *)
  Checkpoint.save_dead_letters store letters;
  let path = Filename.concat dir "DEADLETTERS" in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let bytes = Bytes.of_string (really_input_string ic len) in
  close_in ic;
  (* last byte of the final payload: [... payload "\n" "end\n"] *)
  let pos = len - 6 in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc;
  (match Checkpoint.load_dead_letters store with
  | Error (Checkpoint.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "corrupt DEADLETTERS accepted"
  | Error e -> Alcotest.fail ("wrong error: " ^ Checkpoint.error_to_string e))

(* --- randomized rollback property ---------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let apply_points =
    [
      "engine.apply_update.post_ground";
      "engine.apply_update.post_learning";
      "engine.apply_update.post_inference";
      "learner.train_cd.epoch";
      "grounding.extend.post_dred";
    ]
  in
  [
    Test.make ~count:6 ~name:"rollback restores engine bit-for-bit"
      (triple (int_range 1 1000) (int_range 0 3) (int_range 0 10))
      (fun (corpus_seed, update_idx, point_idx) ->
        Fault.reset ();
        let config = { tiny_config with Corpus.seed = corpus_seed; docs = 10 } in
        let corpus = Corpus.generate config in
        let db = Database.create () in
        Corpus.load corpus ~docs:8 db;
        let engine = Engine.create ~options:quick_options db (Pipeline.base_program ()) in
        let update =
          match update_idx with
          | 0 -> Pipeline.update_of Pipeline.FE1
          | 1 -> Pipeline.update_of Pipeline.FE2
          | 2 -> Pipeline.update_of Pipeline.S1
          | _ -> Grounding.data_update (Corpus.doc_delta corpus ~from_doc:8 ~until_doc:10)
        in
        let point = List.nth apply_points (point_idx mod List.length apply_points) in
        let pre = snapshot engine in
        Fault.reset ();
        Fault.arm point (Fault.Nth 1);
        let txn = Txn.create ~options:rollback_only engine in
        let r = Txn.apply txn update in
        let fired = Fault.fired point in
        Fault.reset ();
        match r with
        | Ok _ ->
          (* The armed point was not on this update's path. *)
          fired = 0
        | Error _ -> fired = 1 && snapshot engine = pre);
  ]

(* --- fault-point coverage meta-test --------------------------------------------- *)

(* Durability points owned by the checkpoint/recovery/soak suites
   (test_recovery, test_core, test_soak); everything else registered in
   this binary must have been exercised by a txn test above.  The io.*
   points are the Fault_file layer — registered at module init, swept by
   the recovery suite and the soak harness. *)
let recovery_allowlist =
  [
    "checkpoint.save.pre_rename";
    "checkpoint.save.pre_manifest";
    "checkpoint.log_update.mid_write";
    "serialize.save.pre_rename";
    "materialize.save.pre_rename";
  ]
  @ Dd_util.Fault_file.all_points

let test_fault_coverage () =
  let registered = Fault.registered () in
  Alcotest.(check bool)
    (Printf.sprintf "at least 10 points registered (got %d)" (List.length registered))
    true
    (List.length registered >= 10);
  let uncovered =
    List.filter
      (fun name -> not (Hashtbl.mem covered name || List.mem name recovery_allowlist))
      registered
  in
  Alcotest.(check (list string)) "every registered fault point is exercised" [] uncovered

let () =
  Alcotest.run "dd_txn"
    [
      ( "budget",
        [
          Alcotest.test_case "ticks" `Quick test_budget_ticks;
          Alcotest.test_case "spec strings" `Quick test_budget_spec_strings;
        ] );
      ( "taxonomy",
        [
          Alcotest.test_case "grounding typed errors" `Quick test_grounding_typed_errors;
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "payload roundtrip" `Quick test_payload_roundtrip;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "bit-identity + replay" `Quick test_rollback_bit_identity;
          Alcotest.test_case "persistent rollback fault" `Quick
            test_persistent_rollback_fault_suppressed;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "retry sweep over fault points" `Slow test_ladder_retry_sweep;
          Alcotest.test_case "retry sweep, columnar backend" `Slow
            test_ladder_retry_sweep_columnar;
          Alcotest.test_case "interrupted rollback" `Quick test_ladder_interrupted_rollback;
          Alcotest.test_case "quarantine after full ladder" `Quick test_ladder_quarantine;
          Alcotest.test_case "malformed never retries" `Quick test_malformed_never_retries;
          Alcotest.test_case "budget timeout quarantine" `Quick test_budget_timeout_quarantine;
        ] );
      ( "persistence",
        [ Alcotest.test_case "dead letters survive the store" `Quick test_dead_letter_persistence ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
      ( "meta",
        [ Alcotest.test_case "fault-point coverage" `Quick test_fault_coverage ] );
    ]
