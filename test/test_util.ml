(* Tests for Dd_util: PRNG, statistics, union-find, tables. *)

module Prng = Dd_util.Prng
module Stats = Dd_util.Stats
module Union_find = Dd_util.Union_find
module Table = Dd_util.Table
module Crc32 = Dd_util.Crc32
module Fault = Dd_util.Fault

let check_float = Alcotest.(check (float 1e-9))
let check_close epsilon = Alcotest.(check (float epsilon))

(* --- prng ------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_int_below_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int_below rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_below_covers () =
  let rng = Prng.create 8 in
  let seen = Array.make 10 false in
  for _ = 1 to 2_000 do
    seen.(Prng.int_below rng 10) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all (fun b -> b) seen)

let test_int_below_roughly_uniform () =
  let rng = Prng.create 9 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let v = Prng.int_below rng 4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "within 2% of uniform" true (abs_float (frac -. 0.25) < 0.02))
    counts

let test_float_unit_range () =
  let rng = Prng.create 10 in
  for _ = 1 to 10_000 do
    let v = Prng.float_unit rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_float_range () =
  let rng = Prng.create 11 in
  for _ = 1 to 1_000 do
    let v = Prng.float_range rng (-2.0) 3.0 in
    Alcotest.(check bool) "in [-2,3)" true (v >= -2.0 && v < 3.0)
  done

let test_bernoulli_extremes () =
  let rng = Prng.create 12 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never true" false (Prng.bernoulli rng 0.0);
    Alcotest.(check bool) "p=1 always true" true (Prng.bernoulli rng 1.0)
  done

let test_bernoulli_rate () =
  let rng = Prng.create 13 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (abs_float (rate -. 0.3) < 0.01)

let test_gaussian_moments () =
  let rng = Prng.create 14 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Prng.gaussian rng) in
  Alcotest.(check bool) "mean near 0" true (abs_float (Stats.mean xs) < 0.02);
  Alcotest.(check bool) "variance near 1" true (abs_float (Stats.variance xs -. 1.0) < 0.05)

let test_exponential_mean () =
  let rng = Prng.create 15 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Prng.exponential rng 2.0) in
  Alcotest.(check bool) "mean near 1/rate" true (abs_float (Stats.mean xs -. 0.5) < 0.02);
  Array.iter (fun x -> Alcotest.(check bool) "positive" true (x >= 0.0)) xs

let test_split_independence () =
  let rng = Prng.create 16 in
  let child = Prng.split rng in
  let a = Array.init 32 (fun _ -> Prng.bits64 rng) in
  let b = Array.init 32 (fun _ -> Prng.bits64 child) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_copy_independent () =
  let rng = Prng.create 17 in
  let dup = Prng.copy rng in
  let a = Prng.bits64 rng in
  let b = Prng.bits64 dup in
  Alcotest.(check int64) "copy continues same stream" a b

let test_shuffle_permutation () =
  let rng = Prng.create 18 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_choice_member () =
  let rng = Prng.create 19 in
  let a = [| 3; 5; 9 |] in
  for _ = 1 to 100 do
    let v = Prng.choice rng a in
    Alcotest.(check bool) "member" true (Array.mem v a)
  done

let test_sample_without_replacement () =
  let rng = Prng.create 20 in
  for _ = 1 to 50 do
    let sample = Prng.sample_without_replacement rng 5 12 in
    Alcotest.(check int) "size" 5 (Array.length sample);
    let distinct = List.sort_uniq compare (Array.to_list sample) in
    Alcotest.(check int) "distinct" 5 (List.length distinct);
    Array.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 12)) sample
  done

let test_sample_full_range () =
  let rng = Prng.create 21 in
  let sample = Prng.sample_without_replacement rng 7 7 in
  let sorted = Array.copy sample in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "whole range" (Array.init 7 (fun i -> i)) sorted

(* --- stats ------------------------------------------------------------ *)

let test_mean_known () = check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_mean_empty () = check_float "empty mean" 0.0 (Stats.mean [||])

let test_variance_known () =
  check_float "variance" 1.25 (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |])

let test_variance_constant () = check_float "constant" 0.0 (Stats.variance [| 5.0; 5.0; 5.0 |])

let test_stddev () = check_float "stddev" 2.0 (Stats.stddev [| 0.0; 4.0; 0.0; 4.0 |])

let test_covariance () =
  (* Perfectly correlated: cov = var. *)
  let xs = [| 1.0; 2.0; 3.0 |] in
  check_float "cov(x,x) = var" (Stats.variance xs) (Stats.covariance xs xs);
  check_float "anti-correlated" (-.Stats.variance xs)
    (Stats.covariance xs [| 3.0; 2.0; 1.0 |])

let test_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "min" 10.0 (Stats.percentile xs 0.0);
  check_float "max" 40.0 (Stats.percentile xs 1.0);
  check_float "median" 25.0 (Stats.percentile xs 0.5)

let test_sigmoid () =
  check_float "sigmoid 0" 0.5 (Stats.sigmoid 0.0);
  check_close 1e-6 "sigmoid large" 1.0 (Stats.sigmoid 50.0);
  check_close 1e-6 "sigmoid -large" 0.0 (Stats.sigmoid (-50.0));
  (* No overflow at extremes. *)
  Alcotest.(check bool) "finite" true (Float.is_finite (Stats.sigmoid (-1000.0)))

let test_logit_inverse () =
  List.iter
    (fun p -> check_close 1e-9 "logit inverse" p (Stats.sigmoid (Stats.logit p)))
    [ 0.01; 0.3; 0.5; 0.77; 0.99 ]

let test_log_sum_exp () =
  check_close 1e-9 "pair" (log (exp 1.0 +. exp 2.0)) (Stats.log_sum_exp [| 1.0; 2.0 |]);
  check_float "empty" neg_infinity (Stats.log_sum_exp [||]);
  (* Stability: would overflow naively. *)
  check_close 1e-6 "huge" (1000.0 +. log 2.0) (Stats.log_sum_exp [| 1000.0; 1000.0 |])

let test_kl_bernoulli () =
  check_close 1e-9 "identical" 0.0 (Stats.kl_bernoulli 0.3 0.3);
  Alcotest.(check bool) "positive" true (Stats.kl_bernoulli 0.2 0.8 > 0.0)

let test_clamp () =
  check_float "below" 0.0 (Stats.clamp 0.0 1.0 (-5.0));
  check_float "above" 1.0 (Stats.clamp 0.0 1.0 7.0);
  check_float "inside" 0.5 (Stats.clamp 0.0 1.0 0.5)

let test_fsum_precision () =
  (* Adding many tiny values to a large one: naive summation loses them. *)
  let xs = Array.make 10_001 1e-8 in
  xs.(0) <- 1.0;
  check_close 1e-12 "kahan" (1.0 +. 1e-4) (Stats.fsum xs)

let test_dot () = check_float "dot" 32.0 (Stats.dot [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |])

let test_l2 () = check_float "l2" 5.0 (Stats.l2_distance [| 0.0; 0.0 |] [| 3.0; 4.0 |])

let test_max_abs_diff () =
  check_float "max diff" 3.0 (Stats.max_abs_diff [| 1.0; 5.0 |] [| 2.0; 2.0 |])

(* --- union-find --------------------------------------------------------- *)

let test_uf_singletons () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "five sets" 5 (Union_find.count uf);
  Alcotest.(check bool) "disjoint" false (Union_find.same uf 0 1)

let test_uf_union () =
  let uf = Union_find.create 5 in
  Union_find.union uf 0 1;
  Union_find.union uf 1 2;
  Alcotest.(check bool) "transitive" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "separate" false (Union_find.same uf 0 3);
  Alcotest.(check int) "three sets" 3 (Union_find.count uf)

let test_uf_groups () =
  let uf = Union_find.create 6 in
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  Union_find.union uf 3 4;
  let groups = Union_find.groups uf in
  let sizes =
    Hashtbl.fold (fun _ members acc -> List.length members :: acc) groups []
    |> List.sort compare
  in
  Alcotest.(check (list int)) "group sizes" [ 1; 2; 3 ] sizes

let test_uf_idempotent_union () =
  let uf = Union_find.create 3 in
  Union_find.union uf 0 1;
  Union_find.union uf 0 1;
  Alcotest.(check int) "count stable" 2 (Union_find.count uf)

let test_uf_add_grows () =
  let uf = Union_find.create 0 in
  Alcotest.(check int) "starts empty" 0 (Union_find.length uf);
  Alcotest.(check int) "first label" 0 (Union_find.add uf);
  Alcotest.(check int) "second label" 1 (Union_find.add uf);
  Alcotest.(check int) "length" 2 (Union_find.length uf);
  Alcotest.(check int) "singletons" 2 (Union_find.count uf);
  (* Grow far past the initial capacity to exercise the array doubling. *)
  for i = 2 to 100 do
    Alcotest.(check int) "dense labels" i (Union_find.add uf)
  done;
  Alcotest.(check int) "grown" 101 (Union_find.length uf)

let test_uf_union_across_added () =
  let uf = Union_find.create 2 in
  let a = Union_find.add uf in
  let b = Union_find.add uf in
  Union_find.union uf 0 a;
  Union_find.union uf a b;
  Alcotest.(check bool) "initial joins added" true (Union_find.same uf 0 b);
  Alcotest.(check bool) "untouched stays apart" false (Union_find.same uf 1 b);
  Alcotest.(check int) "two sets" 2 (Union_find.count uf);
  let groups = Union_find.groups uf in
  let sizes =
    Hashtbl.fold (fun _ members acc -> List.length members :: acc) groups []
    |> List.sort compare
  in
  Alcotest.(check (list int)) "group sizes" [ 1; 3 ] sizes

let test_uf_bounds_checked () =
  let uf = Union_find.create 2 in
  (try
     ignore (Union_find.find uf 2);
     Alcotest.fail "out-of-range find must raise"
   with Invalid_argument _ -> ());
  ignore (Union_find.add uf);
  Alcotest.(check int) "added label valid" 2 (Union_find.find uf 2)

(* --- bitvec --------------------------------------------------------------- *)

module Bitvec = Dd_util.Bitvec

let test_bitvec_get_set () =
  let v = Bitvec.create 20 in
  Alcotest.(check bool) "starts false" false (Bitvec.get v 13);
  Bitvec.set v 13 true;
  Alcotest.(check bool) "set" true (Bitvec.get v 13);
  Alcotest.(check bool) "neighbors untouched" false (Bitvec.get v 12 || Bitvec.get v 14);
  Bitvec.set v 13 false;
  Alcotest.(check bool) "cleared" false (Bitvec.get v 13)

let test_bitvec_roundtrip () =
  let a = Array.init 37 (fun i -> i mod 3 = 0) in
  Alcotest.(check bool) "roundtrip" true (Bitvec.to_bool_array (Bitvec.of_bool_array a) = a)

let test_bitvec_byte_size () =
  Alcotest.(check int) "8 bits, 1 byte" 1 (Bitvec.byte_size (Bitvec.create 8));
  Alcotest.(check int) "9 bits, 2 bytes" 2 (Bitvec.byte_size (Bitvec.create 9));
  Alcotest.(check int) "0 bits" 0 (Bitvec.byte_size (Bitvec.create 0))

let test_bitvec_pop_count_equal_copy () =
  let v = Bitvec.of_bool_array [| true; false; true; true |] in
  Alcotest.(check int) "popcount" 3 (Bitvec.pop_count v);
  let c = Bitvec.copy v in
  Alcotest.(check bool) "equal" true (Bitvec.equal v c);
  Bitvec.set c 1 true;
  Alcotest.(check bool) "independent" false (Bitvec.equal v c)

let test_bitvec_bounds () =
  let v = Bitvec.create 4 in
  Alcotest.(check bool) "oob rejected" true
    (match Bitvec.get v 4 with _ -> false | exception Invalid_argument _ -> true)

(* --- table -------------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "four lines" 4 (List.length lines);
  (* All lines equal width after trimming trailing spaces differences. *)
  Alcotest.(check bool) "header first" true
    (String.length (List.nth lines 0) > 0 && String.get (List.nth lines 1) 0 = '-')

let test_table_pads_short_rows () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "only" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "renders" true (String.length rendered > 0)

let test_cell_formats () =
  Alcotest.(check string) "zero" "0" (Table.cell_f 0.0);
  Alcotest.(check string) "speedup" "2.5x" (Table.cell_x 2.5);
  Alcotest.(check bool) "tiny scientific" true
    (String.contains (Table.cell_f 1e-6) 'e')

(* --- crc32 ----------------------------------------------------------------- *)

let test_crc32_known_vectors () =
  (* Standard CRC-32 (IEEE) check values. *)
  Alcotest.(check string) "empty" "00000000" (Crc32.to_hex (Crc32.string ""));
  Alcotest.(check string) "123456789" "cbf43926"
    (Crc32.to_hex (Crc32.string "123456789"));
  Alcotest.(check string) "hello" "3610a686" (Crc32.to_hex (Crc32.string "hello"))

let test_crc32_streaming_matches_whole () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let split = 17 in
  let streamed =
    Crc32.finish
      (Crc32.update_string
         (Crc32.update_string Crc32.init (String.sub s 0 split))
         (String.sub s split (String.length s - split)))
  in
  Alcotest.(check string) "streamed = whole" (Crc32.to_hex (Crc32.string s))
    (Crc32.to_hex streamed)

let test_crc32_hex_roundtrip () =
  let crc = Crc32.string "roundtrip" in
  (match Crc32.of_hex (Crc32.to_hex crc) with
  | Some back -> Alcotest.(check bool) "roundtrip" true (back = crc)
  | None -> Alcotest.fail "of_hex rejected its own to_hex");
  Alcotest.(check bool) "bad length" true (Crc32.of_hex "abc" = None);
  Alcotest.(check bool) "bad digit" true (Crc32.of_hex "0000000g" = None);
  Alcotest.(check bool) "sign prefix" true (Crc32.of_hex "-0000001" = None)

let test_crc32_detects_flip () =
  let s = Bytes.of_string "some serialized payload" in
  let original = Crc32.string (Bytes.to_string s) in
  Bytes.set s 5 (Char.chr (Char.code (Bytes.get s 5) lxor 1));
  Alcotest.(check bool) "single bit flip detected" true
    (Crc32.string (Bytes.to_string s) <> original)

(* --- fault injection ------------------------------------------------------- *)

let test_fault_unarmed_never_fires () =
  Fault.reset ();
  for _ = 1 to 100 do
    Fault.hit "test.unarmed.site"
  done;
  Alcotest.(check int) "hits counted" 100 (Fault.hits "test.unarmed.site");
  Alcotest.(check int) "never fired" 0 (Fault.fired "test.unarmed.site");
  Fault.reset ()

let test_fault_nth_fires_exactly () =
  Fault.reset ();
  Fault.arm "test.nth.site" (Fault.Nth 3);
  Fault.hit "test.nth.site";
  Fault.hit "test.nth.site";
  (match Fault.hit "test.nth.site" with
  | () -> Alcotest.fail "third hit should raise"
  | exception Fault.Injected name ->
    Alcotest.(check string) "carries point name" "test.nth.site" name);
  (* Later hits do not re-fire: the process is assumed dead after one. *)
  Fault.hit "test.nth.site";
  Alcotest.(check int) "fired once" 1 (Fault.fired "test.nth.site");
  Fault.reset ()

let test_fault_probability_deterministic () =
  let count_fires seed =
    Fault.reset ();
    Fault.seed seed;
    Fault.arm "test.prob.site" (Fault.Probability 0.5);
    let fires = ref 0 in
    for _ = 1 to 200 do
      (try Fault.hit "test.prob.site" with Fault.Injected _ -> incr fires);
      Fault.arm "test.prob.site" (Fault.Probability 0.5)
    done;
    !fires
  in
  let a = count_fires 11 and b = count_fires 11 and c = count_fires 12 in
  Alcotest.(check int) "same seed, same schedule" a b;
  Alcotest.(check bool) "roughly half fire" true (a > 50 && a < 150);
  Alcotest.(check bool) "different seed diverges" true (a <> c);
  Fault.reset ()

let test_fault_registry_and_is_injected () =
  Fault.reset ();
  Fault.declare "test.registry.b";
  Fault.declare "test.registry.a";
  let names = Fault.registered () in
  Alcotest.(check bool) "declared names listed" true
    (List.mem "test.registry.a" names && List.mem "test.registry.b" names);
  Alcotest.(check bool) "sorted" true (List.sort compare names = names);
  Alcotest.(check bool) "is_injected yes" true (Fault.is_injected (Fault.Injected "x"));
  Alcotest.(check bool) "is_injected no" false (Fault.is_injected Exit);
  Fault.reset ()

(* --- qcheck properties ---------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"sigmoid in (0,1)" ~count:500 (float_bound_inclusive 700.0) (fun x ->
        let s = Stats.sigmoid x in
        s >= 0.0 && s <= 1.0);
    Test.make ~name:"logit-sigmoid roundtrip" ~count:500 (float_range 0.001 0.999) (fun p ->
        abs_float (Stats.sigmoid (Stats.logit p) -. p) < 1e-9);
    Test.make ~name:"log_sum_exp shift invariant" ~count:200
      (pair (list_of_size Gen.(1 -- 10) (float_range (-10.0) 10.0)) (float_range (-5.0) 5.0))
      (fun (xs, shift) ->
        let xs = Array.of_list xs in
        let shifted = Array.map (fun x -> x +. shift) xs in
        abs_float (Stats.log_sum_exp shifted -. (Stats.log_sum_exp xs +. shift)) < 1e-9);
    Test.make ~name:"percentile within range" ~count:200
      (pair (list_of_size Gen.(1 -- 20) (float_range (-100.0) 100.0)) (float_range 0.0 1.0))
      (fun (xs, p) ->
        let xs = Array.of_list xs in
        let v = Stats.percentile xs p in
        let lo = Array.fold_left min infinity xs and hi = Array.fold_left max neg_infinity xs in
        v >= lo -. 1e-9 && v <= hi +. 1e-9);
    Test.make ~name:"clamp idempotent" ~count:200
      (triple (float_range (-10.0) 0.0) (float_range 0.0 10.0) (float_range (-20.0) 20.0))
      (fun (lo, hi, x) ->
        let once = Stats.clamp lo hi x in
        Stats.clamp lo hi once = once);
    Test.make ~name:"prng int_below always in range" ~count:500
      (pair small_int (int_range 1 1000))
      (fun (seed, n) ->
        let rng = Prng.create seed in
        let v = Prng.int_below rng n in
        v >= 0 && v < n);
  ]

let () =
  Alcotest.run "dd_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int_below bounds" `Quick test_int_below_bounds;
          Alcotest.test_case "int_below covers" `Quick test_int_below_covers;
          Alcotest.test_case "int_below uniform" `Quick test_int_below_roughly_uniform;
          Alcotest.test_case "float_unit range" `Quick test_float_unit_range;
          Alcotest.test_case "float_range" `Quick test_float_range;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "split independence" `Quick test_split_independence;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "choice member" `Quick test_choice_member;
          Alcotest.test_case "sample w/o replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "sample full range" `Quick test_sample_full_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean_known;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "variance" `Quick test_variance_known;
          Alcotest.test_case "variance constant" `Quick test_variance_constant;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "covariance" `Quick test_covariance;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "sigmoid" `Quick test_sigmoid;
          Alcotest.test_case "logit inverse" `Quick test_logit_inverse;
          Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp;
          Alcotest.test_case "kl bernoulli" `Quick test_kl_bernoulli;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "fsum precision" `Quick test_fsum_precision;
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "l2" `Quick test_l2;
          Alcotest.test_case "max_abs_diff" `Quick test_max_abs_diff;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "singletons" `Quick test_uf_singletons;
          Alcotest.test_case "union" `Quick test_uf_union;
          Alcotest.test_case "groups" `Quick test_uf_groups;
          Alcotest.test_case "idempotent" `Quick test_uf_idempotent_union;
          Alcotest.test_case "add grows" `Quick test_uf_add_grows;
          Alcotest.test_case "union across added" `Quick test_uf_union_across_added;
          Alcotest.test_case "bounds checked" `Quick test_uf_bounds_checked;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "get/set" `Quick test_bitvec_get_set;
          Alcotest.test_case "roundtrip" `Quick test_bitvec_roundtrip;
          Alcotest.test_case "byte size" `Quick test_bitvec_byte_size;
          Alcotest.test_case "popcount/equal/copy" `Quick test_bitvec_pop_count_equal_copy;
          Alcotest.test_case "bounds" `Quick test_bitvec_bounds;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "cell formats" `Quick test_cell_formats;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_known_vectors;
          Alcotest.test_case "streaming" `Quick test_crc32_streaming_matches_whole;
          Alcotest.test_case "hex roundtrip" `Quick test_crc32_hex_roundtrip;
          Alcotest.test_case "detects bit flip" `Quick test_crc32_detects_flip;
        ] );
      ( "fault",
        [
          Alcotest.test_case "unarmed never fires" `Quick test_fault_unarmed_never_fires;
          Alcotest.test_case "nth fires exactly" `Quick test_fault_nth_fires_exactly;
          Alcotest.test_case "probability deterministic" `Quick
            test_fault_probability_deterministic;
          Alcotest.test_case "registry + is_injected" `Quick
            test_fault_registry_and_is_injected;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
